package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rept"
	"rept/internal/gen"
	"rept/internal/obs"
)

// scrapeMetrics GETs /metrics and parses it with the in-repo exposition
// parser, failing the test on any syntax error.
func scrapeMetrics(t *testing.T, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q, want text/plain", ct)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return exp
}

// requireConformant runs the semantic validator over a parsed scrape and
// fails on every violation.
func requireConformant(t *testing.T, exp *obs.Exposition) {
	t.Helper()
	for _, err := range exp.Validate() {
		t.Errorf("exposition conformance: %v", err)
	}
}

// histCount returns the _count of the named histogram family, or 0.
func histCount(exp *obs.Exposition, name string) float64 {
	v, ok := exp.Sample(name + "_count")
	if !ok {
		return 0
	}
	return v
}

// TestMetricsConformance ingests a stream through HTTP and checks the
// full /metrics scrape: syntactic and semantic exposition-format
// conformance, the retyped view gauges, the renamed all-endpoints
// counter with its deprecated alias, and non-zero stage histograms for
// every stage a non-durable server exercises.
func TestMetricsConformance(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 2, C: 4, Shards: 2, Seed: 1, Telemetry: rept.NewTelemetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(est, ""))
	defer func() {
		ts.Close()
		est.Close()
	}()
	if _, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(400))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	// A fresh view epoch exercises barrier + view publish again and gives
	// the scrape a non-trivial view to report.
	if resp := getJSON(t, ts.URL+"/estimate?fresh=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate: status %d", resp.StatusCode)
	}

	exp := scrapeMetrics(t, ts.URL)
	requireConformant(t, exp)

	// The legacy series survive the registry rewrite with their exact
	// names and integer rendering.
	if v, ok := exp.Sample("rept_processed_edges_total"); !ok || v != 1200 {
		t.Errorf("rept_processed_edges_total = %v (present=%v), want 1200", v, ok)
	}
	for name, typ := range map[string]string{
		"rept_processed_edges_total": "counter",
		"rept_view_epoch":            "gauge", // retyped from counter: resets on restore
		"rept_view_processed_edges":  "gauge", // retyped from counter: resets on restore
		"rept_view_age_seconds":      "gauge",
		"rept_sampled_edges":         "gauge",
		"rept_http_requests_total":   "counter",
		"rept_go_goroutines":         "gauge",
		"rept_stage_parse_seconds":   "histogram",
	} {
		f := exp.Family(name)
		if f == nil {
			t.Errorf("family %s missing from scrape", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %s TYPE = %s, want %s", name, f.Type, typ)
		}
	}

	// The all-endpoints counter was renamed to a conforming name; the
	// deprecated rept_http_requests_total_all alias was kept exactly one
	// release and must now be gone from the exposition.
	if _, ok := exp.Sample("rept_http_requests_all_total"); !ok {
		t.Fatal("renamed counter rept_http_requests_all_total missing")
	}
	if f := exp.Family("rept_http_requests_total_all"); f != nil {
		t.Errorf("deprecated alias rept_http_requests_total_all still exposed: %+v", f)
	}

	// The batch-size histogram registers with every telemetry bundle and
	// records on each delivered batch ticket.
	if f := exp.Family("rept_batch_events"); f == nil || f.Type != "histogram" {
		t.Errorf("rept_batch_events must be a histogram family, got %+v", f)
	} else if histCount(exp, "rept_batch_events") == 0 {
		t.Error("rept_batch_events_count = 0 after ingest, want > 0")
	}

	// Every stage a non-durable ingest exercises must have recorded:
	// parse (the HTTP handler), dispatch + queue wait + apply (the shard
	// fan-out), barrier + view publish (the fresh epoch above).
	for _, h := range []string{
		"rept_stage_parse_seconds",
		"rept_stage_dispatch_seconds",
		"rept_stage_queue_wait_seconds",
		"rept_stage_apply_seconds",
		"rept_stage_barrier_seconds",
		"rept_stage_view_publish_seconds",
	} {
		if histCount(exp, h) == 0 {
			t.Errorf("%s_count = 0 after ingest, want > 0", h)
		}
	}

	// Per-shard series carry one child per shard.
	f := exp.Family("rept_shard_events_applied_total")
	if f == nil {
		t.Fatal("rept_shard_events_applied_total missing")
	}
	var total float64
	for i := range f.Samples {
		if _, ok := f.Samples[i].Get("shard"); !ok {
			t.Errorf("per-shard sample without shard label: %+v", f.Samples[i])
		}
		total += f.Samples[i].Value
	}
	// Every shard applies the whole broadcast stream.
	if want := float64(1200 * est.Shards()); total != want {
		t.Errorf("sum rept_shard_events_applied_total = %v, want %v", total, want)
	}

	// A second scrape must still parse and validate (collect hooks are
	// re-entrant) and counters must be monotone.
	exp2 := scrapeMetrics(t, ts.URL)
	requireConformant(t, exp2)
	if v1, _ := exp.Sample("rept_http_requests_all_total"); true {
		if v2, _ := exp2.Sample("rept_http_requests_all_total"); v2 <= v1 {
			t.Errorf("request counter not monotone across scrapes: %v then %v", v1, v2)
		}
	}
}

// TestMetricsConformanceDurable boots a WAL-backed server in-process and
// checks that the WAL series and the append/fsync stage histograms are
// live and the scrape stays conformant.
func TestMetricsConformanceDurable(t *testing.T) {
	est, err := rept.ResumeDurable(rept.ConcurrentConfig{
		M: 2, C: 4, Seed: 1, Telemetry: rept.NewTelemetry(),
	}, rept.WALOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(est, ""))
	defer func() {
		ts.Close()
		est.Close()
	}()
	ir, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(100)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if !ir.Durable {
		t.Fatal("ingest response does not report durable=true")
	}

	exp := scrapeMetrics(t, ts.URL)
	requireConformant(t, exp)
	if v, ok := exp.Sample("rept_wal_durable_events_total"); !ok || v != 300 {
		t.Errorf("rept_wal_durable_events_total = %v (present=%v), want 300", v, ok)
	}
	for _, h := range []string{"rept_stage_wal_append_seconds", "rept_stage_wal_fsync_seconds"} {
		if histCount(exp, h) == 0 {
			t.Errorf("%s_count = 0 after durable ingest, want > 0", h)
		}
	}
}

// TestReadyzEndpoint checks the readiness lifecycle: ready after
// construction, drained (503) after Stop — while /healthz keeps
// answering 200 throughout, which is exactly the liveness/readiness
// split a load balancer needs.
func TestReadyzEndpoint(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	srv := NewServer(est, "")
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ready struct {
		Status    string `json:"status"`
		Epoch     uint64 `json:"epoch"`
		Processed uint64 `json:"processed"`
	}
	if resp := getJSON(t, ts.URL+"/readyz", &ready); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz: status %d, want 200", resp.StatusCode)
	}
	if ready.Status != "ready" || ready.Epoch == 0 {
		t.Errorf("readyz = %+v, want status ready with a non-zero epoch", ready)
	}

	srv.Stop()
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz after Stop: status %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz after Stop: status %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestFlightEndpoint ingests a stream and dumps the flight recorder: the
// dump must be ordered by sequence and contain parse, dispatch, apply,
// and view-publish events with plausible payloads.
func TestFlightEndpoint(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 2, C: 4, Seed: 1, Telemetry: rept.NewTelemetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(est, ""))
	defer func() {
		ts.Close()
		est.Close()
	}()
	if _, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(200))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/estimate?fresh=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate: status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flight: status %d", resp.StatusCode)
	}
	var dump struct {
		Recorded int               `json:"recorded"`
		Events   []obs.FlightEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Recorded == 0 || len(dump.Events) != dump.Recorded {
		t.Fatalf("flight dump recorded=%d with %d events", dump.Recorded, len(dump.Events))
	}
	kinds := make(map[string]int)
	var lastSeq uint64
	for _, ev := range dump.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("flight events out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds[ev.Kind]++
	}
	for _, k := range []string{"parse", "dispatch", "apply", "view_publish"} {
		if kinds[k] == 0 {
			t.Errorf("flight dump has no %q events (kinds: %v)", k, kinds)
		}
	}
}

// TestObservabilityEndToEnd drives the real binary — the same gate CI
// runs: boot with a WAL on a kernel-chosen port, stream edges in, then
// require a conformant /metrics scrape with every pipeline stage
// histogram non-zero, a ready /readyz, and a populated /debug/flight.
func TestObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real processes")
	}
	bin := buildReptserve(t)
	cs := startCrashServer(t, bin,
		"-m", "2", "-c", "8", "-local",
		"-wal-dir", t.TempDir(),
		"-view-interval", "50ms",
	)
	defer cs.kill()

	body := ndjson(gen.DisjointTriangles(500))
	resp, err := http.Post(cs.base+"/edges", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	// A fresh epoch guarantees barrier + view-publish observations even on
	// a fast machine where the interval timer has not fired yet.
	if resp, err := http.Get(cs.base + "/estimate?fresh=1"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	exp := scrapeMetrics(t, cs.base)
	requireConformant(t, exp)
	for _, h := range []string{
		"rept_stage_parse_seconds",
		"rept_stage_dispatch_seconds",
		"rept_stage_queue_wait_seconds",
		"rept_stage_apply_seconds",
		"rept_stage_barrier_seconds",
		"rept_stage_wal_append_seconds",
		"rept_stage_wal_fsync_seconds",
		"rept_stage_view_publish_seconds",
	} {
		if histCount(exp, h) == 0 {
			t.Errorf("%s_count = 0 on the live binary, want > 0", h)
		}
	}
	if v, ok := exp.Sample("rept_processed_edges_total"); !ok || v != 1500 {
		t.Errorf("rept_processed_edges_total = %v (present=%v), want 1500", v, ok)
	}

	if resp, err := http.Get(cs.base + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /readyz: status %d, want 200", resp.StatusCode)
		}
	}

	fresp, err := http.Get(cs.base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var dump struct {
		Recorded int `json:"recorded"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Recorded == 0 {
		t.Error("flight recorder empty on the live binary")
	}
}
