package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rept"
)

// FuzzParseEdgeLine differentially fuzzes the zero-copy line scanner
// against the encoding/json reference: whenever the fast path accepts a
// line, the reference decode must succeed and produce the same u, v, and
// op. (The fast path declining a line is always safe — the handler falls
// back — but accepting with different semantics would silently corrupt
// ingest.)
func FuzzParseEdgeLine(f *testing.F) {
	f.Add([]byte(`{"u":1,"v":2}`))
	f.Add([]byte(`{"v":2,"u":1,"op":"del"}`))
	f.Add([]byte(`{ "u" : 7 , "v" : 9 , "op" : "add" }`))
	f.Add([]byte(`{"u":4294967295,"v":0}`))
	f.Add([]byte(`{"u":01,"v":2}`))
	f.Add([]byte(`{"u":1,"v":2,}`))
	f.Add([]byte(`{"u":1,"v":2} `))
	f.Add([]byte(`{"op":"delete","u":3,"v":4}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		u, v, op, ok := parseEdgeLine(line)
		if !ok {
			return
		}
		var el edgeLine
		if err := json.Unmarshal(line, &el); err != nil {
			t.Fatalf("fast path accepted %q but encoding/json rejects it: %v", line, err)
		}
		if el.U == nil || el.V == nil {
			t.Fatalf("fast path accepted %q but reference says u/v missing", line)
		}
		if *el.U != u || *el.V != v {
			t.Fatalf("fast path (%d, %d) disagrees with reference (%d, %d) on %q", u, v, *el.U, *el.V, line)
		}
		wantOp := opNone
		switch el.Op {
		case "add":
			wantOp = opAdd
		case "del", "delete":
			wantOp = opDel
		case "":
		default:
			t.Fatalf("fast path accepted %q with op %q it should have declined", line, el.Op)
		}
		if op != wantOp {
			t.Fatalf("fast path op %d disagrees with reference %d on %q", op, wantOp, line)
		}
	})
}

// FuzzIngestNDJSON throws arbitrary bytes at the NDJSON edge parser
// through the real handler, on a fully-dynamic estimator so "op" lines
// reach the deletion path: whatever the body, POST and DELETE /edges
// must answer 200 or 400 and never panic — arbitrary deletion sequences
// (edges never inserted, double deletes) must be absorbed. One estimator
// is shared across iterations (and fuzz workers — Concurrent is
// goroutine-safe), so state accumulates the way it does on a long-lived
// server.
func FuzzIngestNDJSON(f *testing.F) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1, TrackLocal: true, FullyDynamic: true})
	if err != nil {
		f.Fatal(err)
	}
	srv := NewServer(est, "")

	f.Add([]byte("{\"u\":1,\"v\":2}\n{\"u\":2,\"v\":3}\n"))
	f.Add([]byte("{\"u\":1,\"v\":1}\n"))          // self-loop
	f.Add([]byte("{\"u\":1}\n"))                  // missing v
	f.Add([]byte("{\"u\":-1,\"v\":2}\n"))         // negative id
	f.Add([]byte("{\"u\":4294967296,\"v\":0}\n")) // uint32 overflow
	f.Add([]byte("{\"u\":1,\"v\":2}"))            // no trailing newline
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("not json at all"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Add([]byte("{\"u\":1e99,\"v\":2}\n"))
	f.Add([]byte("[1,2]\n"))
	f.Add([]byte("{\"u\":null,\"v\":2}\n"))
	f.Add([]byte("{\"u\":1,\"v\":2,\"op\":\"del\"}\n"))                                   // delete (maybe absent)
	f.Add([]byte("{\"u\":1,\"v\":2,\"op\":\"add\"}\n{\"u\":1,\"v\":2,\"op\":\"del\"}\n")) // insert+delete
	f.Add([]byte("{\"u\":5,\"v\":6,\"op\":\"del\"}\n{\"u\":5,\"v\":6,\"op\":\"del\"}\n")) // double delete
	f.Add([]byte("{\"u\":1,\"v\":2,\"op\":\"upsert\"}\n"))                                // unknown op
	f.Add([]byte("{\"u\":1,\"v\":2,\"op\":7}\n"))                                         // non-string op
	f.Add([]byte("{\"u\":3,\"v\":3,\"op\":\"del\"}\n"))                                   // self-loop delete

	f.Fuzz(func(t *testing.T, body []byte) {
		for _, method := range []string{http.MethodPost, http.MethodDelete} {
			req := httptest.NewRequest(method, "/edges", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
				t.Errorf("%s /edges with %q: status %d, want 200 or 400", method, body, rec.Code)
			}
		}
	})
}
