package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"rept"
	"rept/internal/exper"
	"rept/internal/gen"
)

// ndjsonUpdates renders a signed event stream as NDJSON ingest lines,
// spelling out op:"add" on a sample of insertions so both the implicit
// and explicit forms are exercised.
func ndjsonUpdates(ups []rept.Update) string {
	var b strings.Builder
	for i, up := range ups {
		switch {
		case up.Del:
			fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d,\"op\":\"del\"}\n", up.U, up.V)
		case i%7 == 0:
			fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d,\"op\":\"add\"}\n", up.U, up.V)
		default:
			fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d}\n", up.U, up.V)
		}
	}
	return b.String()
}

func bodyRequest(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// TestIngestDeletions drives the fully-dynamic ingest surface end to
// end: op:"del" lines through POST, bare lines through DELETE /edges,
// per-line op overrides, and the net estimate they produce.
func TestIngestDeletions(t *testing.T) {
	ts, est := newTestServer(t, rept.ConcurrentConfig{M: 1, C: 1, Seed: 1, FullyDynamic: true})

	// Build a triangle plus a chord, then unfollow the chord: M=1 is the
	// exact mode, so estimates are exact counts.
	if _, resp := postEdges(t, ts.URL, "{\"u\":1,\"v\":2}\n{\"u\":2,\"v\":3}\n{\"u\":1,\"v\":3}\n{\"u\":2,\"v\":4}\n{\"u\":3,\"v\":4,\"op\":\"add\"}\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert ingest: status %d", resp.StatusCode)
	}
	var er estimateResponse
	getJSON(t, ts.URL+"/estimate?fresh=1", &er)
	if er.Global != 2 {
		t.Fatalf("global after inserts = %v, want 2", er.Global)
	}

	// POST with an op:"del" line removes (2,4), killing triangle {2,3,4}.
	if _, resp := postEdges(t, ts.URL, "{\"u\":2,\"v\":4,\"op\":\"del\"}\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("op:del ingest: status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/estimate?fresh=1", &er)
	if er.Global != 1 || er.Deleted != 1 {
		t.Fatalf("global after op:del = %v (deleted %d), want 1 (1)", er.Global, er.Deleted)
	}

	// DELETE /edges with bare lines defaults them to deletions; an
	// explicit op:"add" line re-inserts within the same body.
	resp, out := bodyRequest(t, http.MethodDelete, ts.URL+"/edges", "{\"u\":1,\"v\":3}\n{\"u\":2,\"v\":4,\"op\":\"add\"}\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /edges: status %d (%v)", resp.StatusCode, out)
	}
	if out["deleted"] != float64(1) || out["accepted"] != float64(2) {
		t.Fatalf("DELETE /edges response = %v, want accepted 2 deleted 1", out)
	}
	getJSON(t, ts.URL+"/estimate?fresh=1", &er)
	if er.Global != 1 { // {1,2,3} broken, {2,3,4} restored
		t.Fatalf("global after DELETE body = %v, want 1", er.Global)
	}
	if got := est.Deleted(); got != 2 {
		t.Fatalf("estimator Deleted = %d, want 2", got)
	}

	// Unknown ops are 400s, reported with their line number.
	resp, out = bodyRequest(t, http.MethodPost, ts.URL+"/edges", "{\"u\":1,\"v\":2,\"op\":\"upsert\"}\n")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(fmt.Sprint(out["error"]), "op") {
		t.Fatalf("unknown op: status %d body %v, want 400 naming the op", resp.StatusCode, out)
	}
}

// TestIngestDeletionsRequireDynamic: without -dynamic every deletion
// path answers 409 and leaves the estimator untouched.
func TestIngestDeletionsRequireDynamic(t *testing.T) {
	ts, est := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})

	if _, resp := postEdges(t, ts.URL, "{\"u\":1,\"v\":2}\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert ingest: status %d", resp.StatusCode)
	}
	resp, out := bodyRequest(t, http.MethodDelete, ts.URL+"/edges", "{\"u\":1,\"v\":2}\n")
	if resp.StatusCode != http.StatusConflict || !strings.Contains(fmt.Sprint(out["error"]), "-dynamic") {
		t.Fatalf("DELETE without -dynamic: status %d body %v, want 409 naming -dynamic", resp.StatusCode, out)
	}
	resp, out = bodyRequest(t, http.MethodPost, ts.URL+"/edges", "{\"u\":3,\"v\":4}\n{\"u\":1,\"v\":2,\"op\":\"del\"}\n")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("op:del without -dynamic: status %d body %v, want 409", resp.StatusCode, out)
	}
	// The insert line before the rejected delete was already streamed in
	// (ingestion is not transactional) — the deletion itself must not be.
	if est.Processed() != 2 || est.Deleted() != 0 {
		t.Fatalf("tallies = (%d, %d), want (2, 0)", est.Processed(), est.Deleted())
	}
}

// TestKillAndRestoreBitForBitFullyDynamic is the fully-dynamic
// counterpart of TestKillAndRestoreBitForBit: stream a deletion-bearing
// churn prefix, checkpoint (format v3), kill the server, boot from the
// snapshot, stream the churn suffix, and the final statistical output
// must equal an uninterrupted server's byte for byte.
func TestKillAndRestoreBitForBitFullyDynamic(t *testing.T) {
	cfg := rept.ConcurrentConfig{M: 5, C: 12, Shards: 2, Seed: 33, TrackLocal: true, TrackDegrees: true, FullyDynamic: true}
	base := gen.Shuffle(gen.HolmeKim(300, 4, 0.4, 13), 7)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.35, Seed: 21})
	cut := len(ups) / 2
	snapPath := filepath.Join(t.TempDir(), "state.snap")

	// Phase 1: fresh server, stream the churn prefix, checkpoint, kill.
	estA, err := newEstimator(cfg, "", rept.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(NewServer(estA, snapPath))
	if _, out := bodyRequest(t, http.MethodPost, tsA.URL+"/edges", ndjsonUpdates(ups[:cut])); out["error"] != nil {
		t.Fatalf("prefix ingest: %v", out["error"])
	}
	cr, resp := postCheckpoint(t, tsA.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /checkpoint: status %d", resp.StatusCode)
	}
	if cr.Processed != uint64(cut) {
		t.Fatalf("checkpoint processed = %d, want %d events", cr.Processed, cut)
	}
	tsA.Close()
	estA.Close()

	// Phase 2: boot from the snapshot, stream the suffix.
	estB, err := newEstimator(cfg, snapPath, rept.WALOptions{})
	if err != nil {
		t.Fatalf("restore boot: %v", err)
	}
	defer estB.Close()
	if estB.Processed() != uint64(cut) {
		t.Fatalf("restored Processed = %d, want %d", estB.Processed(), cut)
	}
	tsB := httptest.NewServer(NewServer(estB, snapPath))
	defer tsB.Close()
	if _, out := bodyRequest(t, http.MethodPost, tsB.URL+"/edges", ndjsonUpdates(ups[cut:])); out["error"] != nil {
		t.Fatalf("suffix ingest: %v", out["error"])
	}
	restored := getStatistical(t, tsB.URL+"/estimate?fresh=1")

	// Reference: one server fed the whole churn stream uninterrupted.
	estC, err := newEstimator(cfg, "", rept.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer estC.Close()
	tsC := httptest.NewServer(NewServer(estC, ""))
	defer tsC.Close()
	if _, out := bodyRequest(t, http.MethodPost, tsC.URL+"/edges", ndjsonUpdates(ups)); out["error"] != nil {
		t.Fatalf("reference ingest: %v", out["error"])
	}
	uninterrupted := getStatistical(t, tsC.URL+"/estimate?fresh=1")

	if fmt.Sprint(restored) != fmt.Sprint(uninterrupted) {
		t.Errorf("kill-and-restore output diverged:\nrestored:      %v\nuninterrupted: %v", restored, uninterrupted)
	}

	// And the snapshot itself must be reproducible: checkpointing the
	// restored+caught-up server and the uninterrupted one yields
	// byte-identical v3 snapshots (canonical encoding).
	crB, resp := postCheckpoint(t, tsB.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored checkpoint: status %d", resp.StatusCode)
	}
	if crB.Processed != uint64(len(ups)) {
		t.Errorf("restored checkpoint processed = %d, want %d", crB.Processed, len(ups))
	}
}
