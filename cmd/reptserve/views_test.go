package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rept"
	"rept/internal/gen"
)

// localServer builds a test server with local + degree tracking on, in
// exact mode (M=1, C=1) so view answers are deterministic.
func localServer(t *testing.T) (*httptest.Server, *rept.Concurrent) {
	t.Helper()
	return newTestServer(t, rept.ConcurrentConfig{M: 1, C: 1, Seed: 1, TrackLocal: true, TrackDegrees: true})
}

type metaFields struct {
	Epoch         uint64  `json:"epoch"`
	AgeMs         float64 `json:"ageMs"`
	AsOfProcessed uint64  `json:"asOfProcessed"`
}

// TestTopKEndpoint ingests a stream with a known heavy hitter and checks
// the ranking, the epoch/staleness report, and the parameter validation.
func TestTopKEndpoint(t *testing.T) {
	ts, _ := localServer(t)
	// A 12-clique: every member has tau_v = C(11,2) = 55. Node ids 100+.
	clique := gen.Complete(12)
	for i := range clique {
		clique[i].U += 100
		clique[i].V += 100
	}
	// Plus 30 disjoint triangles (tau_v = 1 each) as background.
	body := ndjson(append(gen.DisjointTriangles(30), clique...))
	if _, resp := postEdges(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	var out struct {
		metaFields
		K     int `json:"k"`
		Nodes []struct {
			V      uint32   `json:"v"`
			Local  float64  `json:"local"`
			Degree *uint32  `json:"degree"`
			CC     *float64 `json:"cc"`
		} `json:"nodes"`
	}
	if resp := getJSON(t, ts.URL+"/topk?k=12&fresh=1", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /topk: status %d", resp.StatusCode)
	}
	if out.Epoch == 0 {
		t.Error("topk response reports no epoch")
	}
	if out.AsOfProcessed != uint64(30*3+len(clique)) {
		t.Errorf("asOfProcessed = %d, want %d", out.AsOfProcessed, 30*3+len(clique))
	}
	if out.K != 12 || len(out.Nodes) != 12 {
		t.Fatalf("k = %d with %d rows, want 12", out.K, len(out.Nodes))
	}
	for i, n := range out.Nodes {
		if n.V < 100 {
			t.Errorf("rank %d is node %d, want a clique member (>= 100)", i, n.V)
		}
		if n.Local != 55 {
			t.Errorf("rank %d local = %v, want 55 (exact mode)", i, n.Local)
		}
		if n.Degree == nil || *n.Degree != 11 {
			t.Errorf("rank %d degree = %v, want 11", i, n.Degree)
		}
		// Clique members have cc = 2*55/(11*10) = 1.
		if n.CC == nil || *n.CC != 1 {
			t.Errorf("rank %d cc = %v, want 1", i, n.CC)
		}
	}

	if resp := getJSON(t, ts.URL+"/topk?k=abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /topk?k=abc: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/topk?k=1000000", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /topk beyond ranking size: status %d, want 400", resp.StatusCode)
	}
}

func TestCCEndpoint(t *testing.T) {
	ts, _ := localServer(t)
	// Triangle 0-1-2 plus a pendant edge 2-3: cc(2) = 2*1/(3*2) = 1/3,
	// cc(3) undefined (degree 1).
	if _, resp := postEdges(t, ts.URL, ndjson([]rept.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var out struct {
		metaFields
		V      uint32   `json:"v"`
		Local  float64  `json:"local"`
		Degree *uint32  `json:"degree"`
		CC     *float64 `json:"cc"`
	}
	if resp := getJSON(t, ts.URL+"/cc?v=2&fresh=1", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cc: status %d", resp.StatusCode)
	}
	if out.Epoch == 0 {
		t.Error("cc response reports no epoch")
	}
	if out.Degree == nil || *out.Degree != 3 || out.Local != 1 {
		t.Fatalf("cc response = %+v, want degree 3 local 1", out)
	}
	if out.CC == nil || *out.CC != 1.0/3 {
		t.Errorf("cc(2) = %v, want 1/3", out.CC)
	}

	out.CC = nil
	if resp := getJSON(t, ts.URL+"/cc?v=3", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cc?v=3: status %d", resp.StatusCode)
	}
	if out.CC != nil {
		t.Errorf("cc(3) = %v, want omitted (degree < 2)", *out.CC)
	}
	if resp := getJSON(t, ts.URL+"/cc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /cc without v: status %d, want 400", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := localServer(t)
	if _, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(5))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/query?fresh=1", "application/json", strings.NewReader(`{"nodes":[0,1,99]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	var out struct {
		metaFields
		Results []struct {
			V     uint32  `json:"v"`
			Local float64 `json:"local"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch == 0 {
		t.Error("query response reports no epoch")
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].V != 0 || out.Results[0].Local != 1 {
		t.Errorf("results[0] = %+v, want node 0 local 1", out.Results[0])
	}
	if out.Results[2].V != 99 || out.Results[2].Local != 0 {
		t.Errorf("results[2] = %+v, want node 99 local 0 (unseen)", out.Results[2])
	}

	bad, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("POST /query with garbage: status %d, want 400", bad.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := localServer(t)
	if _, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(3))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var out struct {
		metaFields
		Processed      uint64            `json:"processed"`
		SampledEdges   int               `json:"sampledEdges"`
		EtaSaturations uint64            `json:"etaSaturations"`
		Shards         int               `json:"shards"`
		TopK           int               `json:"topK"`
		Requests       map[string]uint64 `json:"requests"`
	}
	if resp := getJSON(t, ts.URL+"/stats?fresh=1", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: status %d", resp.StatusCode)
	}
	if out.Epoch == 0 || out.Processed != 9 || out.AsOfProcessed != 9 {
		t.Errorf("stats = %+v, want epoch > 0, processed 9", out)
	}
	if out.SampledEdges != 9 {
		t.Errorf("sampledEdges = %d, want 9 (M=1 stores everything)", out.SampledEdges)
	}
	if out.EtaSaturations != 0 {
		t.Errorf("etaSaturations = %d on a tiny stream, want 0", out.EtaSaturations)
	}
	if out.Shards != 1 || out.TopK != 100 {
		t.Errorf("shards = %d topK = %d, want 1 and 100", out.Shards, out.TopK)
	}
	if out.Requests["/edges"] != 1 || out.Requests["/stats"] == 0 {
		t.Errorf("per-endpoint requests = %v", out.Requests)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := localServer(t)
	if _, resp := postEdges(t, ts.URL, "{\"u\":1,\"v\":2}\n{\"u\":3,\"v\":3}\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"rept_processed_edges_total 1\n",
		"rept_self_loops_total 1\n",
		"# TYPE rept_view_age_seconds gauge",
		"rept_view_epoch ",
		"rept_http_requests_total{endpoint=\"/edges\"} 1\n",
		"rept_http_requests_total{endpoint=\"/metrics\"} 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestViewEndpointsRequireTracking: every analytics endpoint answers 409
// when the needed tracking is off.
func TestViewEndpointsRequireTracking(t *testing.T) {
	ts, _ := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	for _, url := range []string{"/topk", "/cc?v=1"} {
		if resp := getJSON(t, ts.URL+url, nil); resp.StatusCode != http.StatusConflict {
			t.Errorf("GET %s without tracking: status %d, want 409", url, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"nodes":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("POST /query without tracking: status %d, want 409", resp.StatusCode)
	}
	// cc additionally needs degrees: local-only tracking still answers 409.
	ts2, _ := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1, TrackLocal: true})
	if resp := getJSON(t, ts2.URL+"/cc?v=1", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("GET /cc with locals but no degrees: status %d, want 409", resp.StatusCode)
	}
}

// TestStaleThenFresh: without fresh=1 a query may answer from an older
// epoch (bounded staleness is the contract); with fresh=1 it must reflect
// everything ingested before the call.
func TestStaleThenFresh(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 1, C: 1, Seed: 1, TrackLocal: true, TrackDegrees: true})
	if err != nil {
		t.Fatal(err)
	}
	// A long interval so the background publisher cannot mask staleness.
	if _, err := est.StartViews(rept.ViewConfig{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(est, ""))
	t.Cleanup(func() { ts.Close(); est.Close() })

	if _, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(2))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var stale estimateResponse
	if resp := getJSON(t, ts.URL+"/estimate", &stale); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate: status %d", resp.StatusCode)
	}
	if stale.Processed != 0 || stale.Epoch != 1 {
		t.Errorf("stale response = processed %d epoch %d, want 0 and 1 (epoch published before ingest)", stale.Processed, stale.Epoch)
	}
	var fresh estimateResponse
	if resp := getJSON(t, ts.URL+"/estimate?fresh=1", &fresh); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate?fresh=1: status %d", resp.StatusCode)
	}
	if fresh.Processed != 6 || fresh.Global != 2 || fresh.Epoch <= stale.Epoch {
		t.Errorf("fresh response = %+v, want processed 6, global 2, a later epoch", fresh)
	}
}
