package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rept"
	"rept/internal/control"
	"rept/internal/gen"
)

// TestParseByteSize: the -mem-budget grammar — plain bytes, binary K/M/G/T
// multiples, optional "i" and/or "B", case-insensitive — and its refusals.
func TestParseByteSize(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"512", 512},
		{"64k", 64 << 10},
		{"64K", 64 << 10},
		{"100KB", 100 << 10},
		{"256MiB", 256 << 20},
		{"256M", 256 << 20},
		{"256mib", 256 << 20},
		{"1G", 1 << 30},
		{"2TiB", 2 << 40},
		{" 8M ", 8 << 20},
	}
	for _, tc := range good {
		got, err := parseByteSize(tc.in)
		if err != nil {
			t.Errorf("parseByteSize(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("parseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, in := range []string{"", "abc", "-5", "0", "5X", "12.5M", "99999999999TiB", "M"} {
		if got, err := parseByteSize(in); err == nil {
			t.Errorf("parseByteSize(%q) = %d, want error", in, got)
		}
	}
}

// newBudgetServer builds a server with the adaptive controller attached at
// the given budget, mirroring main's wiring minus the background ticker —
// tests drive Tick explicitly for determinism.
func newBudgetServer(t *testing.T, budget int64) (*httptest.Server, *rept.Concurrent, *control.Controller) {
	t.Helper()
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 2, C: 4, Seed: 3, FullyDynamic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(est, "")
	ctrl := control.New(control.Config{
		Budget:      budget,
		MemTotal:    est.MemTotalBytes,
		Processed:   est.Processed,
		SampleShift: est.SampleShift,
		Downsample:  est.Downsample,
	})
	srv.SetController(ctrl)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		est.Close()
	})
	return ts, est, ctrl
}

// TestShedding429: once the controller is in the shedding state, /edges
// answers 429 with a Retry-After header — distinct from the 503 of a
// graceful drain — while queries, /readyz, and /metrics keep serving; and
// the first accepted request after pressure clears proves the refusal is
// per-request, not a latch.
func TestShedding429(t *testing.T) {
	// Budget of 1 byte: any ingest at all overruns it.
	ts, _, ctrl := newBudgetServer(t, 1)
	if _, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(50))); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-pressure ingest: status %d", resp.StatusCode)
	}
	ctrl.Tick() // observes mem >> budget: shed
	if !ctrl.ShouldShed() {
		t.Fatal("controller not shedding with a 1-byte budget")
	}

	_, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(5)))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shedding POST /edges: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}

	// Queries and readiness survive shedding: only ingest is refused.
	if resp := getJSON(t, ts.URL+"/estimate", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /estimate while shedding: status %d, want 200", resp.StatusCode)
	}
	var ready struct {
		Status string `json:"status"`
		Budget struct {
			State    string `json:"state"`
			Shedding bool   `json:"shedding"`
		} `json:"budget"`
	}
	if resp := getJSON(t, ts.URL+"/readyz", &ready); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /readyz while shedding: status %d, want 200 (shedding is not unreadiness)", resp.StatusCode)
	}
	if ready.Status != "ready" || !ready.Budget.Shedding || ready.Budget.State != "shedding" {
		t.Errorf("readyz = %+v, want ready with budget state shedding", ready)
	}

	// The shed tally reached the metrics surface.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"rept_shed_requests_total 1",
		"rept_mem_budget_bytes 1",
		"rept_mem_state 2",
		"rept_mem_bytes{component=\"adjacency\"}",
		"rept_sample_probability",
		"rept_variance_bound",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStatsBudgetAndMemoryBlocks: /stats always carries the memory ledger
// block; the budget block appears exactly when a controller is attached.
func TestStatsBudgetAndMemoryBlocks(t *testing.T) {
	read := func(ts *httptest.Server) (map[string]any, bool) {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Memory map[string]any `json:"memory"`
			Budget map[string]any `json:"budget"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Memory == nil {
			t.Fatal("/stats has no memory block")
		}
		return out.Memory, out.Budget != nil
	}

	plain, _ := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	if _, resp := postEdges(t, plain.URL, ndjson(gen.DisjointTriangles(40))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	memBlock, hasBudget := read(plain)
	if hasBudget {
		t.Error("budget block present without -mem-budget")
	}
	if p, _ := memBlock["sampleProbability"].(float64); p != 0.5 {
		t.Errorf("sampleProbability = %v at M=2, want 0.5", p)
	}
	by, _ := memBlock["byComponent"].(map[string]any)
	if v, _ := by["adjacency"].(float64); !(v > 0) {
		t.Errorf("memory.byComponent.adjacency = %v after ingest, want > 0", by["adjacency"])
	}

	budgeted, _, ctrl := newBudgetServer(t, 1<<30)
	if _, resp := postEdges(t, budgeted.URL, ndjson(gen.DisjointTriangles(40))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	ctrl.Tick()
	if _, hasBudget := read(budgeted); !hasBudget {
		t.Error("budget block missing with a controller attached")
	}
}

// TestFlightLimit: ?n= caps the /debug/flight dump to the newest n events,
// recorded keeps reporting the full ring occupancy, and malformed values
// are a 400.
func TestFlightLimit(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 2, C: 4, Seed: 1, Telemetry: rept.NewTelemetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(est, ""))
	defer func() {
		ts.Close()
		est.Close()
	}()
	if _, resp := postEdges(t, ts.URL, ndjson(gen.DisjointTriangles(100))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/estimate?fresh=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate: status %d", resp.StatusCode)
	}

	var full flightDump
	getJSON(t, ts.URL+"/debug/flight", &full)
	if full.Recorded < 3 {
		t.Fatalf("only %d flight events recorded; stream too small for the test", full.Recorded)
	}

	var dump flightDump
	getJSON(t, ts.URL+"/debug/flight?n=2", &dump)
	if dump.Returned != 2 || len(dump.Events) != 2 {
		t.Fatalf("?n=2 returned %d events (returned=%d), want 2", len(dump.Events), dump.Returned)
	}
	if dump.Recorded < full.Recorded {
		t.Errorf("recorded = %d in the capped dump, want the full occupancy >= %d", dump.Recorded, full.Recorded)
	}
	// The newest events are kept: the capped dump's last seq matches an
	// uncapped dump's tail region.
	if last, fullLast := dump.Events[1].Seq, full.Events[len(full.Events)-1].Seq; last < fullLast {
		t.Errorf("capped dump ends at seq %d, uncapped at %d: the cap kept the oldest events", last, fullLast)
	}

	var zero flightDump
	getJSON(t, ts.URL+"/debug/flight?n=0", &zero)
	if zero.Returned != 0 || len(zero.Events) != 0 {
		t.Errorf("?n=0 returned %d events, want 0", zero.Returned)
	}

	for _, bad := range []string{"-1", "x", "1.5"} {
		resp, err := http.Get(ts.URL + "/debug/flight?n=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?n=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// flightDump mirrors the /debug/flight response shape.
type flightDump struct {
	Recorded int `json:"recorded"`
	Returned int `json:"returned"`
	Events   []struct {
		Seq uint64 `json:"seq"`
	} `json:"events"`
}
