package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rept"
)

// TestParseEdgeLineFast: every line the fast scanner accepts must decode
// to exactly what encoding/json would have produced.
func TestParseEdgeLineFast(t *testing.T) {
	cases := []struct {
		line string
		u, v uint32
		op   int
	}{
		{`{"u":1,"v":2}`, 1, 2, opNone},
		{`{"v":2,"u":1}`, 1, 2, opNone},
		{`{ "u" : 7 , "v" : 9 }`, 7, 9, opNone},
		{`{"u":0,"v":4294967295}`, 0, 4294967295, opNone},
		{`{"u":1,"v":2,"op":"add"}`, 1, 2, opAdd},
		{`{"u":1,"v":2,"op":"del"}`, 1, 2, opDel},
		{`{"op":"delete","u":3,"v":4}`, 3, 4, opDel},
		{`{"u":5,"v":5,"op":""}`, 5, 5, opNone},
		{"\t{\"u\":10,\"v\":11}\r", 10, 11, opNone},
	}
	for _, c := range cases {
		u, v, op, ok := parseEdgeLine([]byte(c.line))
		if !ok {
			t.Errorf("parseEdgeLine(%q) rejected a fast-shape line", c.line)
			continue
		}
		if u != c.u || v != c.v || op != c.op {
			t.Errorf("parseEdgeLine(%q) = (%d, %d, %d), want (%d, %d, %d)", c.line, u, v, op, c.u, c.v, c.op)
		}
		// Cross-check against the encoding/json reference decode.
		var el edgeLine
		if err := json.Unmarshal([]byte(c.line), &el); err != nil {
			t.Errorf("reference decode of %q failed: %v", c.line, err)
			continue
		}
		if el.U == nil || el.V == nil || *el.U != u || *el.V != v {
			t.Errorf("parseEdgeLine(%q) disagrees with encoding/json: (%d,%d) vs (%v,%v)", c.line, u, v, el.U, el.V)
		}
	}
}

// TestParseEdgeLineFallback: anything outside the fast shape — malformed,
// unusual, or carrying semantics only encoding/json should decide — must
// be declined so the fallback path preserves historical behavior.
func TestParseEdgeLineFallback(t *testing.T) {
	lines := []string{
		``,
		`not json`,
		`{}`,
		`{"u":1}`,                     // missing v → json's "need both" 400
		`{"v":2}`,                     // missing u
		`{"u":1,"v":2,}`,              // trailing comma is invalid JSON
		`{"u":1,"v":4294967296}`,      // overflows uint32 → json's 400
		`{"u":-1,"v":2}`,              // negative
		`{"u":1.5,"v":2}`,             // fraction
		`{"u":1e2,"v":2}`,             // exponent
		`{"u":01,"v":2}`,              // leading zero is invalid JSON
		`{"u":"1","v":2}`,             // string-typed number
		`{"u":1,"v":2,"op":"frob"}`,   // unknown op → json path's op 400
		`{"u":1,"v":2,"op":"ad\u64"}`, // escapes
		`{"u":1,"v":2,"extra":true}`,  // unknown field (json ignores it)
		`{"u":1,"u":2,"v":3}`,         // duplicate field (json last-wins)
		`{"u":1,"v":2} trailing`,      // trailing garbage
		`[1,2]`,
	}
	for _, line := range lines {
		if _, _, _, ok := parseEdgeLine([]byte(line)); ok {
			t.Errorf("parseEdgeLine(%q) = ok, want fallback to encoding/json", line)
		}
	}
}

// TestParseEdgeLineZeroAlloc gates the tentpole's zero-allocation claim
// for the hot ingest parse: one fast-shape line must cost 0 allocs.
func TestParseEdgeLineZeroAlloc(t *testing.T) {
	lines := [][]byte{
		[]byte(`{"u":123456,"v":654321}`),
		[]byte(`{"u":1,"v":2,"op":"del"}`),
		[]byte(`{ "op" : "add" , "u" : 3 , "v" : 4 }`),
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, l := range lines {
			if _, _, _, ok := parseEdgeLine(l); !ok {
				t.Fatal("fast line rejected")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("parseEdgeLine allocates %.1f times per 3 lines, want 0", allocs)
	}
}

// TestIngestFastAndFallbackAgree drives mixed fast/fallback lines through
// the real handler and checks the estimator sees the same stream either
// way.
func TestIngestFastAndFallbackAgree(t *testing.T) {
	tsA, estA := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 9, FullyDynamic: true})
	tsB, estB := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 9, FullyDynamic: true})

	// Body A: fast shapes. Body B: the same events dressed so every line
	// falls back to encoding/json (extra field).
	var fast, slow strings.Builder
	type ev struct {
		u, v uint32
		op   string
	}
	events := []ev{{1, 2, ""}, {2, 3, "add"}, {1, 3, ""}, {1, 2, "del"}, {4, 4, ""}}
	for _, e := range events {
		if e.op == "" {
			fast.WriteString(`{"u":` + itoa(e.u) + `,"v":` + itoa(e.v) + "}\n")
			slow.WriteString(`{"u":` + itoa(e.u) + `,"v":` + itoa(e.v) + `,"x":0}` + "\n")
		} else {
			fast.WriteString(`{"u":` + itoa(e.u) + `,"v":` + itoa(e.v) + `,"op":"` + e.op + `"}` + "\n")
			slow.WriteString(`{"u":` + itoa(e.u) + `,"v":` + itoa(e.v) + `,"op":"` + e.op + `","x":0}` + "\n")
		}
	}
	irA, respA := postEdges(t, tsA.URL, fast.String())
	irB, respB := postEdges(t, tsB.URL, slow.String())
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", respA.StatusCode, respB.StatusCode)
	}
	if irA != irB {
		t.Errorf("fast response %+v != fallback response %+v", irA, irB)
	}
	if estA.Processed() != estB.Processed() || estA.Deleted() != estB.Deleted() || estA.SelfLoops() != estB.SelfLoops() {
		t.Errorf("estimators diverge: (%d,%d,%d) vs (%d,%d,%d)",
			estA.Processed(), estA.Deleted(), estA.SelfLoops(),
			estB.Processed(), estB.Deleted(), estB.SelfLoops())
	}
	if g1, g2 := estA.Global(), estB.Global(); g1 != g2 {
		t.Errorf("estimates diverge: %v vs %v", g1, g2)
	}
}

func itoa(n uint32) string {
	var buf [10]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:])
}

// TestIngestAccountingOnShutdown is the regression test for the
// accepted-count over-report: events parsed into a batch that the
// shutdown path refused to flush were historically still counted as
// accepted. The 503 must report exactly the events the estimator got —
// zero here — and the estimator must be untouched.
func TestIngestAccountingOnShutdown(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(est, "")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer est.Close()

	srv.Stop()

	// Fewer lines than a batch: dropped by the final flush.
	resp, err := http.Post(ts.URL+"/edges", "application/x-ndjson", strings.NewReader(ndjson([]rept.Edge{{U: 1, V: 2}, {U: 2, V: 3}})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "accepted 0 events") {
		t.Errorf("503 body %q, want it to report 0 accepted events (none were ingested)", body.Error)
	}
	if est.Processed() != 0 {
		t.Errorf("estimator processed %d events through a stopped server", est.Processed())
	}

	// More lines than the body-batch bound: the mid-loop flush refuses
	// too.
	var big strings.Builder
	for i := 0; i < maxBodyBatch+10; i++ {
		big.WriteString(`{"u":1,"v":2}` + "\n")
	}
	resp2, err := http.Post(ts.URL+"/edges", "application/x-ndjson", strings.NewReader(big.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("big body: status %d, want 503", resp2.StatusCode)
	}
	body.Error = ""
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "accepted 0 events") {
		t.Errorf("big-body 503 %q, want 0 accepted events", body.Error)
	}
	if est.Processed() != 0 {
		t.Errorf("estimator processed %d events through a stopped server", est.Processed())
	}
}

// TestIngestAccountingOnReadError: when the body dies mid-request (an
// over-long line), the 400 reports exactly the events flushed to the
// estimator before the failure, and the two stay consistent.
func TestIngestAccountingOnReadError(t *testing.T) {
	ts, est := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	body := `{"u":1,"v":2}` + "\n" + `{"u":2,"v":3}` + "\n" + strings.Repeat("x", maxLineLen+1) + "\n"
	resp, err := http.Post(ts.URL+"/edges", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var msg struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg.Error, "accepted 2 events") {
		t.Errorf("400 body %q, want it to report the 2 flushed events", msg.Error)
	}
	if est.Processed() != 2 {
		t.Errorf("estimator processed %d, want 2", est.Processed())
	}
}
