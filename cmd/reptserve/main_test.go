package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rept"
	"rept/internal/gen"
)

func newTestServer(t *testing.T, cfg rept.ConcurrentConfig) (*httptest.Server, *rept.Concurrent) {
	t.Helper()
	est, err := rept.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(est, ""))
	t.Cleanup(func() {
		ts.Close()
		est.Close()
	})
	return ts, est
}

func ndjson(edges []rept.Edge) string {
	var b strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d}\n", e.U, e.V)
	}
	return b.String()
}

func postEdges(t *testing.T, url, body string) (ingestResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/edges", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
	}
	return ir, resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestConcurrentIngestEnvelope is the acceptance test: 6 parallel clients
// stream disjoint NDJSON chunks into /edges, and the /estimate response
// must land within the same error envelope (6 theoretical standard
// errors around the exact count) as a single-caller Estimator fed the
// identical stream.
func TestConcurrentIngestEnvelope(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(500, 5, 0.4, 31), 17)
	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	tau := float64(exact.Tau)

	const m, c = 4, 64
	envelope := 6 * math.Sqrt(rept.TheoreticalVariance(m, c, tau, float64(exact.Eta)))

	single, err := rept.New(rept.Config{M: m, C: c, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	single.AddAll(edges)
	if diff := math.Abs(single.Global() - tau); diff > envelope {
		t.Fatalf("single-caller estimator off by %v > envelope %v", diff, envelope)
	}

	ts, _ := newTestServer(t, rept.ConcurrentConfig{M: m, C: c, Shards: 4, Seed: 77})

	const clients = 6
	chunk := (len(edges) + clients - 1) / clients
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for p := 0; p < clients; p++ {
		lo := min(p*chunk, len(edges))
		hi := min(lo+chunk, len(edges))
		wg.Add(1)
		go func(part []rept.Edge) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/edges", "application/x-ndjson", strings.NewReader(ndjson(part)))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("POST /edges: status %d", resp.StatusCode)
			}
		}(edges[lo:hi])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// fresh=1 forces a barrier epoch: the response must describe the full
	// ingested stream, not a bounded-stale view of it.
	var est estimateResponse
	if resp := getJSON(t, ts.URL+"/estimate?fresh=1", &est); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate: status %d", resp.StatusCode)
	}
	if est.Processed != uint64(len(edges)) {
		t.Fatalf("processed = %d, want %d", est.Processed, len(edges))
	}
	if diff := math.Abs(est.Global - tau); diff > envelope {
		t.Errorf("server estimate %v off exact %v by %v > envelope %v", est.Global, tau, diff, envelope)
	}
}

func TestIngestResponseCounts(t *testing.T) {
	ts, est := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	body := "{\"u\":1,\"v\":2}\n\n{\"u\":3,\"v\":3}\n{\"u\":2,\"v\":3}\n"
	ir, resp := postEdges(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ir.Accepted != 2 || ir.SelfLoops != 1 {
		t.Errorf("accepted=%d selfLoops=%d, want 2 and 1", ir.Accepted, ir.SelfLoops)
	}
	if ir.Processed != 2 || est.Processed() != 2 {
		t.Errorf("processed=%d (estimator %d), want 2", ir.Processed, est.Processed())
	}
}

func TestIngestMalformedLine(t *testing.T) {
	ts, est := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	for _, body := range []string{
		"{\"u\":1,\"v\":2}\nnot json\n",
		"{\"u\":1}\n",
		"{\"u\":1,\"v\":4294967296}\n", // overflows uint32
	} {
		_, resp := postEdges(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// The well-formed prefix of the first body was ingested before the error.
	if est.Processed() != 1 {
		t.Errorf("processed = %d, want 1 (streaming ingest keeps the valid prefix)", est.Processed())
	}
}

func TestMethodsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})

	if resp := getJSON(t, ts.URL+"/edges", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /edges: status %d, want 405", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/estimate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /estimate: status %d, want 405", resp.StatusCode)
	}

	var health struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Shards < 1 {
		t.Errorf("healthz = %+v", health)
	}
}

func TestLocalEndpoint(t *testing.T) {
	// DisjointTriangles gives every node exactly one triangle.
	edges := gen.DisjointTriangles(40)
	ts, _ := newTestServer(t, rept.ConcurrentConfig{M: 1, C: 1, Seed: 1, TrackLocal: true})
	if _, resp := postEdges(t, ts.URL, ndjson(edges)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	var out struct {
		V     uint32  `json:"v"`
		Local float64 `json:"local"`
		Epoch uint64  `json:"epoch"`
	}
	if resp := getJSON(t, ts.URL+"/local?v=0&fresh=1", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /local: status %d", resp.StatusCode)
	}
	if out.Epoch == 0 {
		t.Error("view-backed /local response reports no epoch")
	}
	// M=1, C=1 is exact counting: node 0 is in exactly one triangle.
	if out.Local != 1 {
		t.Errorf("local estimate for node 0 = %v, want 1 (exact mode)", out.Local)
	}

	if resp := getJSON(t, ts.URL+"/local", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /local without v: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/local?v=abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /local?v=abc: status %d, want 400", resp.StatusCode)
	}
}

func TestLocalDisabled(t *testing.T) {
	ts, _ := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	if resp := getJSON(t, ts.URL+"/local?v=1", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("GET /local with tracking disabled: status %d, want 409", resp.StatusCode)
	}
}

func TestEstimateVarianceOmittedWhenUntracked(t *testing.T) {
	// C < M without forced η is the one layout whose variance needs η
	// counters that are not tracked: the NaN must be omitted from the
	// JSON rather than breaking encoding.
	ts, _ := newTestServer(t, rept.ConcurrentConfig{M: 4, C: 2, Seed: 1})
	var est estimateResponse
	if resp := getJSON(t, ts.URL+"/estimate", &est); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate: status %d", resp.StatusCode)
	}
	if est.Variance != nil || est.StdErr != nil {
		t.Errorf("variance fields present without η tracking: %+v", est)
	}

	ts2, _ := newTestServer(t, rept.ConcurrentConfig{M: 4, C: 2, Seed: 1, TrackEta: true})
	if resp := getJSON(t, ts2.URL+"/estimate", &est); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /estimate (eta): status %d", resp.StatusCode)
	}
	if est.Variance == nil || est.StdErr == nil {
		t.Errorf("variance fields missing with η tracking: %+v", est)
	}
}

// TestStopThenRequests: after Stop the handlers must answer 503 rather
// than touching the estimator, so closing it underneath (the expired
// grace-period path in main) cannot panic in-flight ingests.
func TestStopThenRequests(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1, TrackLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(est, "")
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.Stop()
	est.Close()

	if _, resp := postEdges(t, ts.URL, "{\"u\":1,\"v\":2}\n"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST /edges after Stop: status %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/estimate", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /estimate after Stop: status %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/local?v=1", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /local after Stop: status %d, want 503", resp.StatusCode)
	}
	// Liveness keeps answering through shutdown (atomic counters only).
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz after Stop: status %d, want 200", resp.StatusCode)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-m", "0"}); err == nil {
		t.Error("run with m=0 succeeded, want config error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("run with unknown flag succeeded, want flag error")
	}
}
