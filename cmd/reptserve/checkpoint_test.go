package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rept"
	"rept/internal/gen"
)

func postCheckpoint(t *testing.T, url string) (checkpointResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr checkpointResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
	}
	return cr, resp
}

func getRawBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// getStatistical fetches a fresh view-backed response and strips the
// fields that legitimately differ between servers (epoch sequence and
// wall-clock age), leaving only the estimator's statistical output.
// Values pass through one identical JSON round trip on both sides, so
// reflect.DeepEqual on the result is still an exact (bit-for-bit on
// floats) comparison.
func getStatistical(t *testing.T, url string) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.Unmarshal(getRawBody(t, url), &out); err != nil {
		t.Fatal(err)
	}
	delete(out, "epoch")
	delete(out, "ageMs")
	return out
}

// TestKillAndRestoreBitForBit is the acceptance test: stream a prefix
// into reptserve, checkpoint, kill the server, boot a new one from the
// snapshot (the -restore code path), stream the suffix, and the final
// /estimate body must equal an uninterrupted server's byte for byte.
func TestKillAndRestoreBitForBit(t *testing.T) {
	cfg := rept.ConcurrentConfig{M: 5, C: 12, Shards: 2, Seed: 33, TrackLocal: true}
	edges := gen.Shuffle(gen.HolmeKim(300, 4, 0.4, 13), 7)
	cut := len(edges) / 2
	snapPath := filepath.Join(t.TempDir(), "state.snap")

	// Phase 1: fresh server, stream the prefix, checkpoint, kill.
	estA, err := newEstimator(cfg, "", rept.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(NewServer(estA, snapPath))
	if _, resp := postEdges(t, tsA.URL, ndjson(edges[:cut])); resp.StatusCode != http.StatusOK {
		t.Fatalf("prefix ingest: status %d", resp.StatusCode)
	}
	cr, resp := postCheckpoint(t, tsA.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /checkpoint: status %d", resp.StatusCode)
	}
	if cr.Path != snapPath || cr.Bytes <= 0 || cr.Processed != uint64(cut) {
		t.Fatalf("checkpoint response = %+v, want path %s and processed %d", cr, snapPath, cut)
	}
	tsA.Close()
	estA.Close()

	// Phase 2: boot from the snapshot (exactly what -restore does),
	// stream the suffix.
	estB, err := newEstimator(cfg, snapPath, rept.WALOptions{})
	if err != nil {
		t.Fatalf("restore boot: %v", err)
	}
	defer estB.Close()
	if estB.Processed() != uint64(cut) {
		t.Fatalf("restored Processed = %d, want %d", estB.Processed(), cut)
	}
	tsB := httptest.NewServer(NewServer(estB, snapPath))
	defer tsB.Close()
	if _, resp := postEdges(t, tsB.URL, ndjson(edges[cut:])); resp.StatusCode != http.StatusOK {
		t.Fatalf("suffix ingest: status %d", resp.StatusCode)
	}
	restored := getStatistical(t, tsB.URL+"/estimate?fresh=1")

	// Reference: one server fed the whole stream without interruption.
	estC, err := newEstimator(cfg, "", rept.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer estC.Close()
	tsC := httptest.NewServer(NewServer(estC, ""))
	defer tsC.Close()
	if _, resp := postEdges(t, tsC.URL, ndjson(edges)); resp.StatusCode != http.StatusOK {
		t.Fatalf("reference ingest: status %d", resp.StatusCode)
	}
	reference := getStatistical(t, tsC.URL+"/estimate?fresh=1")

	if !reflect.DeepEqual(restored, reference) {
		t.Errorf("kill-and-restore /estimate diverged:\nrestored:  %v\nreference: %v", restored, reference)
	}

	// The local endpoint agrees too.
	a := getStatistical(t, tsB.URL+"/local?v=0&fresh=1")
	b := getStatistical(t, tsC.URL+"/local?v=0&fresh=1")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("kill-and-restore /local diverged: %v vs %v", a, b)
	}
}

// TestCheckpointOverwritesAtomically: a second checkpoint replaces the
// first in place and leaves no temp files behind.
func TestCheckpointOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.snap")
	est, err := newEstimator(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1}, "", rept.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	ts := httptest.NewServer(NewServer(est, snapPath))
	defer ts.Close()

	if _, resp := postCheckpoint(t, ts.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("first checkpoint: status %d", resp.StatusCode)
	}
	if _, resp := postEdges(t, ts.URL, "{\"u\":1,\"v\":2}\n"); resp.StatusCode != http.StatusOK {
		t.Fatal("ingest failed")
	}
	cr, resp := postCheckpoint(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second checkpoint: status %d", resp.StatusCode)
	}
	if cr.Processed != 1 {
		t.Errorf("second checkpoint processed = %d, want 1", cr.Processed)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("snapshot dir holds %v, want exactly [state.snap] (temp files must not leak)", names)
	}
	// The overwritten snapshot restores to the newer prefix.
	resumed, err := newEstimator(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1}, snapPath, rept.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Processed() != 1 {
		t.Errorf("restored Processed = %d, want 1", resumed.Processed())
	}
}

// TestCheckpointCompactsWAL: on a durable server POST /checkpoint folds
// the log into its checkpoint — with -snapshot it additionally writes
// the portable snapshot file, without it the compaction is the whole
// request (no 409).
func TestCheckpointCompactsWAL(t *testing.T) {
	cfg := rept.ConcurrentConfig{M: 2, C: 4, Seed: 1}
	est, err := newEstimator(cfg, "", rept.WALOptions{Dir: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	ts := httptest.NewServer(NewServer(est, ""))
	defer ts.Close()

	if _, resp := postEdges(t, ts.URL, ndjson(gen.HolmeKim(40, 3, 0.4, 2))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	want := est.Processed()
	cr, resp := postCheckpoint(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /checkpoint on a durable server without -snapshot: status %d, want 200", resp.StatusCode)
	}
	if cr.Path != "" || cr.Bytes != 0 {
		t.Errorf("wal-only checkpoint response carries a snapshot file: %+v", cr)
	}
	if cr.WAL == nil {
		t.Fatal("durable checkpoint response has no wal block")
	}
	if cr.WAL.CheckpointPos != want {
		t.Errorf("wal checkpoint position = %d after /checkpoint, want %d", cr.WAL.CheckpointPos, want)
	}

	// With -snapshot too, the same request both writes the file and
	// advances the log's checkpoint.
	snapPath := filepath.Join(t.TempDir(), "state.snap")
	est2, err := newEstimator(cfg, "", rept.WALOptions{Dir: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer est2.Close()
	ts2 := httptest.NewServer(NewServer(est2, snapPath))
	defer ts2.Close()
	if _, resp := postEdges(t, ts2.URL, ndjson(gen.HolmeKim(40, 3, 0.4, 2))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	want = est2.Processed()
	cr, resp = postCheckpoint(t, ts2.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /checkpoint: status %d", resp.StatusCode)
	}
	if cr.Path != snapPath || cr.Bytes <= 0 {
		t.Errorf("checkpoint response %+v, want snapshot file at %s", cr, snapPath)
	}
	if cr.WAL == nil || cr.WAL.CheckpointPos != want {
		t.Errorf("checkpoint response wal block = %+v, want checkpoint position %d", cr.WAL, want)
	}
}

func TestCheckpointDisabledAndMethods(t *testing.T) {
	ts, _ := newTestServer(t, rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	if _, resp := postCheckpoint(t, ts.URL); resp.StatusCode != http.StatusConflict {
		t.Errorf("POST /checkpoint without -snapshot: status %d, want 409", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/checkpoint", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /checkpoint: status %d, want 405", resp.StatusCode)
	}
}

// TestRestoreBootErrors covers the -restore failure modes: missing file,
// garbage file, and a config fingerprint mismatch with a descriptive
// message.
func TestRestoreBootErrors(t *testing.T) {
	cfg := rept.ConcurrentConfig{M: 4, C: 8, Shards: 2, Seed: 5}
	snapPath := filepath.Join(t.TempDir(), "state.snap")

	if _, err := newEstimator(cfg, snapPath, rept.WALOptions{}); err == nil {
		t.Error("restore from a missing file succeeded")
	}

	if err := os.WriteFile(snapPath, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newEstimator(cfg, snapPath, rept.WALOptions{}); err == nil {
		t.Error("restore from garbage succeeded")
	}

	est, err := newEstimator(cfg, "", rept.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	est.Close()

	wrong := cfg
	wrong.M = 7
	_, err = newEstimator(wrong, snapPath, rept.WALOptions{})
	if err == nil {
		t.Fatal("restore under a different -m succeeded")
	}
	if !strings.Contains(err.Error(), "M = 4 in snapshot, 7 in config") {
		t.Errorf("mismatch error %q does not name the field", err)
	}

	// The same mismatch through the full flag-parsing run() path.
	if err := run([]string{"-restore", snapPath, "-m", "7", "-c", "8", "-shards", "2", "-seed", "5", "-addr", "127.0.0.1:0"}); err == nil || !strings.Contains(err.Error(), "in snapshot") {
		t.Errorf("run -restore with mismatched -m: err = %v, want fingerprint mismatch", err)
	}
}
