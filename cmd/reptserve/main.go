// Command reptserve exposes a concurrency-safe REPT estimator as an HTTP
// service: many clients stream edges in, any client can query global and
// local triangle estimates mid-stream.
//
// Usage:
//
//	reptserve -addr :8080 -m 10 -c 40 [-shards 4 -local -dynamic -seed 1]
//	          [-view-interval 200ms -view-edges 0 -topk 100]
//	          [-snapshot state.snap] [-restore state.snap]
//
// Endpoints:
//
//	POST /edges       NDJSON body, one {"u":1,"v":2} object per line;
//	                  with -dynamic a line may carry "op":"del" to delete
//	DELETE /edges     same NDJSON body, lines default to deletions
//	                  (requires -dynamic)
//	GET  /estimate    global estimate (+ variance when tracked)
//	GET  /local?v=7   local estimate of node 7 (requires -local)
//	GET  /topk?k=10   heaviest nodes by local estimate (requires -local)
//	GET  /cc?v=7      local clustering coefficient (requires -local)
//	POST /query       batch node lookup: {"nodes":[1,2,3]}
//	GET  /stats       epoch/staleness state + ingest counters
//	GET  /metrics     Prometheus text format
//	POST /checkpoint  write a durable snapshot to the -snapshot path
//	GET  /healthz     liveness and ingest counters
//
// Queries answer from materialized epoch views, republished every
// -view-interval (and, with -view-edges N, whenever N new edges arrive):
// reads are lock-free and never block ingest, and every view-backed
// response reports the epoch it answered from, its age in milliseconds,
// and the processed count it describes. Append ?fresh=1 to /estimate,
// /local, /topk, /cc, or /query to force a fresh barrier epoch first
// (exact, but orders of magnitude more expensive under load).
//
// Example session:
//
//	printf '{"u":1,"v":2}\n{"u":2,"v":3}\n{"u":1,"v":3}\n' |
//	    curl -sS --data-binary @- http://localhost:8080/edges
//	curl -sS http://localhost:8080/estimate
//	curl -sS 'http://localhost:8080/topk?k=5&fresh=1'
//
// Fully-dynamic streams: with -dynamic the server accepts edge deletions
// (follow/unfollow churn, flow expiry) and every estimate tracks the NET
// triangle count of the live graph; see the rept package documentation
// for the estimator semantics. The flag is part of the snapshot
// fingerprint like the other statistical flags.
//
// Durability: -snapshot enables POST /checkpoint, which persists the full
// estimator state atomically (temp file + rename) without pausing
// ingestion; -restore boots from such a snapshot, picking the stream up
// exactly where the checkpoint left it. The statistical flags (-m, -c,
// -shards, -seed, -local, -eta, -degrees, -dynamic) must match the snapshot's
// fingerprint or the boot fails with an error naming the differing
// fields; -local -degrees=false restores checkpoints taken before degree
// tracking existed.
//
// The process drains in-flight edges and exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rept"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reptserve:", err)
		os.Exit(1)
	}
}

// newEstimator builds the serving estimator: fresh for an empty
// restorePath, otherwise resumed from the snapshot file (the exact code
// path the -restore flag takes, shared with tests).
func newEstimator(cfg rept.ConcurrentConfig, restorePath string) (*rept.Concurrent, error) {
	if restorePath == "" {
		return rept.NewConcurrent(cfg)
	}
	f, err := os.Open(restorePath)
	if err != nil {
		return nil, fmt.Errorf("restore: %w", err)
	}
	defer f.Close()
	est, err := rept.ResumeConcurrent(cfg, f)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", restorePath, err)
	}
	return est, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("reptserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		m        = fs.Int("m", 10, "sampling denominator; p = 1/m")
		c        = fs.Int("c", 40, "total logical processors across shards")
		shards   = fs.Int("shards", 0, "engine shards (0 = auto)")
		seed     = fs.Int64("seed", 1, "random seed")
		local    = fs.Bool("local", false, "track local (per-node) estimates and degrees (enables /local, /topk, /cc, /query)")
		dynamic  = fs.Bool("dynamic", false, "accept edge deletions (op:\"del\" lines and DELETE /edges); estimates track the net live graph")
		degrees  = fs.Bool("degrees", true, "with -local, also track per-node degrees (disable to restore degree-less snapshots, e.g. pre-upgrade checkpoints)")
		eta      = fs.Bool("eta", false, "force η̂ tracking (variance for every config)")
		batch    = fs.Int("batch", 0, "ingest hand-off batch length (0 = default)")
		grace    = fs.Duration("grace", 10*time.Second, "shutdown grace period")
		snapshot = fs.String("snapshot", "", "checkpoint destination path; enables POST /checkpoint")
		restore  = fs.String("restore", "", "boot from this snapshot file instead of empty state")
		interval = fs.Duration("view-interval", 200*time.Millisecond, "max time between query-view epochs")
		vedges   = fs.Uint64("view-edges", 0, "also republish the query view every N ingested edges (0 = off)")
		topk     = fs.Int("topk", 100, "precomputed heavy-hitter ranking size (caps /topk?k=)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	est, err := newEstimator(rept.ConcurrentConfig{
		M:            *m,
		C:            *c,
		Shards:       *shards,
		Seed:         *seed,
		TrackLocal:   *local,
		FullyDynamic: *dynamic,
		TrackEta:     *eta,
		// Degrees ride along with -local: clustering coefficients need
		// both, and the O(V) table is cheap next to the local counters.
		// -degrees=false opts out, which is how a -local deployment
		// restores a checkpoint taken before degree tracking existed
		// (the table is part of the snapshot fingerprint contract).
		TrackDegrees: *local && *degrees,
		BatchSize:    *batch,
	}, *restore)
	if err != nil {
		return err
	}

	if _, err := est.StartViews(rept.ViewConfig{Interval: *interval, EveryEdges: *vedges, TopK: *topk}); err != nil {
		est.Close()
		return err
	}
	api := NewServer(est, *snapshot)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *restore != "" {
		fmt.Fprintf(os.Stderr, "reptserve: restored %d processed edges from %s\n", est.Processed(), *restore)
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "reptserve: listening on %s (m=%d c=%d shards=%d local=%v dynamic=%v)\n",
			*addr, *m, *c, est.Shards(), *local, *dynamic)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		api.Stop()
		est.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "reptserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	// Stop drains in-flight estimator calls; lingering handlers (when the
	// grace period expired with clients still streaming) answer 503 from
	// here on, so closing the estimator under them is safe.
	api.Stop()
	est.Close()
	if shutdownErr != nil {
		if !errors.Is(shutdownErr, context.DeadlineExceeded) {
			return shutdownErr
		}
		fmt.Fprintln(os.Stderr, "reptserve: grace period expired with requests in flight")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
