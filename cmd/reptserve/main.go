// Command reptserve exposes a concurrency-safe REPT estimator as an HTTP
// service: many clients stream edges in, any client can query global and
// local triangle estimates mid-stream.
//
// Usage:
//
//	reptserve -addr :8080 -m 10 -c 40 [-shards 4 -local -dynamic -seed 1]
//	          [-view-interval 200ms -view-edges 0 -topk 100]
//	          [-snapshot state.snap] [-restore state.snap]
//	          [-wal-dir walspool [-wal-sync batch|250ms]
//	           [-wal-compact-every 500000] [-wal-segment-bytes 67108864]]
//	          [-mem-budget 256MiB [-mem-headroom 0.1] [-mem-tick 1s]]
//
// Endpoints:
//
//	POST /edges       NDJSON body, one {"u":1,"v":2} object per line;
//	                  with -dynamic a line may carry "op":"del" to delete
//	DELETE /edges     same NDJSON body, lines default to deletions
//	                  (requires -dynamic)
//	GET  /estimate    global estimate (+ variance when tracked)
//	GET  /local?v=7   local estimate of node 7 (requires -local)
//	GET  /topk?k=10   heaviest nodes by local estimate (requires -local)
//	GET  /cc?v=7      local clustering coefficient (requires -local)
//	POST /query       batch node lookup: {"nodes":[1,2,3]}
//	GET  /stats       epoch/staleness state + ingest counters
//	GET  /metrics     Prometheus text format
//	POST /checkpoint  write a durable snapshot to the -snapshot path
//	GET  /healthz     liveness and ingest counters
//	GET  /readyz      readiness: 200 only once recovery finished and the
//	                  first view published; 503 while draining
//	GET  /debug/flight  JSON dump of the flight recorder (recent pipeline
//	                  events with timestamps and durations)
//
// Queries answer from materialized epoch views, republished every
// -view-interval (and, with -view-edges N, whenever N new edges arrive):
// reads are lock-free and never block ingest, and every view-backed
// response reports the epoch it answered from, its age in milliseconds,
// and the processed count it describes. Append ?fresh=1 to /estimate,
// /local, /topk, /cc, or /query to force a fresh barrier epoch first
// (exact, but orders of magnitude more expensive under load).
//
// Example session:
//
//	printf '{"u":1,"v":2}\n{"u":2,"v":3}\n{"u":1,"v":3}\n' |
//	    curl -sS --data-binary @- http://localhost:8080/edges
//	curl -sS http://localhost:8080/estimate
//	curl -sS 'http://localhost:8080/topk?k=5&fresh=1'
//
// Fully-dynamic streams: with -dynamic the server accepts edge deletions
// (follow/unfollow churn, flow expiry) and every estimate tracks the NET
// triangle count of the live graph; see the rept package documentation
// for the estimator semantics. The flag is part of the snapshot
// fingerprint like the other statistical flags.
//
// Durability: -snapshot enables POST /checkpoint, which persists the full
// estimator state atomically (temp file + rename) without pausing
// ingestion; -restore boots from such a snapshot, picking the stream up
// exactly where the checkpoint left it. The statistical flags (-m, -c,
// -shards, -seed, -local, -eta, -degrees, -dynamic) must match the snapshot's
// fingerprint or the boot fails with an error naming the differing
// fields; -local -degrees=false restores checkpoints taken before degree
// tracking existed.
//
// Write-ahead logging: -wal-dir upgrades the server from
// checkpoint-on-demand to continuous durability. Every accepted edge
// event is appended to a segmented, CRC-checked log in that directory,
// and on restart — clean or after a kill — the server replays the log's
// own checkpoint plus the surviving tail before serving, announcing
// "wal recovered to position N" on stderr. With -wal-sync batch (the
// default) a 200 from POST /edges is a durability receipt: the response
// is sent only after the request's events are fsynced, so "accepted"
// events survive any crash; a sync failure fails the request with HTTP
// 500 and no events are credited. With -wal-sync <duration> the log is
// group-committed on that interval instead — ingest never waits on the
// disk, at the cost of losing at most the last interval's events on
// power failure (a kill -9 with a healthy disk still loses nothing).
// Sealed segments are folded into an incremental checkpoint every
// -wal-compact-every events (and on demand via POST /checkpoint, which
// also compacts the log when one is running), bounding both replay time
// and disk usage; -wal-segment-bytes caps individual segment files. The
// WAL's append/durable/checkpoint positions, segment count, and failure
// counters are reported in the "wal" block of /stats and as
// rept_wal_* gauges in /metrics. Combining -wal-dir with -restore seeds
// an EMPTY log directory from a legacy snapshot file — the one-time
// migration path from snapshot-only deployments.
//
// Memory budgets: -mem-budget puts the estimator under an adaptive
// byte budget. Every storage layer reports its backing bytes to an
// always-on ledger (rept_mem_bytes{component=...} in /metrics, the
// "memory" block of /stats); the controller polls the ledger every
// -mem-tick and, when accounted memory crosses the soft watermark
// (budget minus -mem-headroom), degrades in a fixed order: the top-K
// ranking shrinks first (restored when pressure clears), then the
// sampling probability itself is halved stream-consistently with REPT's
// unbiasing rescale — the estimate stays unbiased, the variance bound
// (rept_variance_bound) steps up, and memory falls. Only at the HARD
// budget does the server shed: POST /edges answers 429 with Retry-After
// until degradation catches up — a healthy-server backpressure signal,
// distinct from the 503 shutdown path, and queries keep serving
// throughout (readiness stays 200, with the budget posture in the
// /readyz body). Downsampling refuses η-tracking configurations (-eta,
// or -c neither a multiple of -m nor below it): the controller then
// degrades top-K only and otherwise sheds.
//
// Observability: /metrics renders every series from the estimator's
// telemetry bundle (see rept.NewTelemetry) — ingest tallies, WAL
// positions, per-shard queue depth and throughput, and latency
// histograms for every pipeline stage (NDJSON parse, shard dispatch,
// batch apply, barrier, WAL append and fsync, view publish). Recording
// is zero-allocation, so instrumentation is always on. /debug/flight
// dumps the flight recorder: the last few thousand pipeline events with
// nanosecond timestamps, for postmortems where aggregated histograms
// are too coarse. -pprof-addr serves net/http/pprof on a separate
// listener (keep it off the public address); -access-log emits one
// structured JSON line per request on stderr, and requests slower than
// -slow-log (default 1s; 0 disables) are logged as warnings even
// without -access-log.
//
// The process drains in-flight edges and exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"rept"
	"rept/internal/control"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reptserve:", err)
		os.Exit(1)
	}
}

// newEstimator builds the serving estimator: fresh for an empty
// restorePath, otherwise resumed from the snapshot file (the exact code
// path the -restore flag takes, shared with tests). With a WAL directory
// it opens (or creates) the durable estimator instead — recovering from
// the log's own checkpoint and tail — and -restore seeds an EMPTY log
// directory from a legacy snapshot file.
func newEstimator(cfg rept.ConcurrentConfig, restorePath string, walOpt rept.WALOptions) (*rept.Concurrent, error) {
	if walOpt.Dir != "" {
		if restorePath != "" {
			f, err := os.Open(restorePath)
			if err != nil {
				return nil, fmt.Errorf("restore: %w", err)
			}
			defer f.Close()
			walOpt.Bootstrap = f
		}
		est, err := rept.ResumeDurable(cfg, walOpt)
		if err != nil {
			return nil, err
		}
		return est, nil
	}
	if restorePath == "" {
		return rept.NewConcurrent(cfg)
	}
	f, err := os.Open(restorePath)
	if err != nil {
		return nil, fmt.Errorf("restore: %w", err)
	}
	defer f.Close()
	est, err := rept.ResumeConcurrent(cfg, f)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", restorePath, err)
	}
	return est, nil
}

// parseByteSize parses a human byte count for -mem-budget: a plain
// integer is bytes; K/M/G/T suffixes are binary multiples, with an
// optional "i" and/or "B" (64M == 64Mi == 64MiB == 64*2^20), case-
// insensitive.
func parseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("empty size")
	}
	upper := strings.ToUpper(t)
	upper = strings.TrimSuffix(upper, "B")
	upper = strings.TrimSuffix(upper, "I")
	mult := int64(1)
	if n := len(upper); n > 0 {
		switch upper[n-1] {
		case 'K':
			mult = 1 << 10
		case 'M':
			mult = 1 << 20
		case 'G':
			mult = 1 << 30
		case 'T':
			mult = 1 << 40
		}
		if mult > 1 {
			upper = upper[:n-1]
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a byte size (want e.g. 67108864, 64M, 64MiB): %v", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("size must be positive (got %q)", s)
	}
	if v > (1<<63-1)/mult {
		return 0, fmt.Errorf("%q overflows", s)
	}
	return v * mult, nil
}

// parseWALSync maps the -wal-sync flag onto WALOptions.SyncInterval:
// "batch" (sync before acknowledging every ingest request) or a positive
// duration (group sync on that period; acknowledgments then promise only
// that the events are in the log buffer, with a loss window of at most
// the interval).
func parseWALSync(s string) (time.Duration, error) {
	if s == "batch" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("-wal-sync: %q is neither \"batch\" nor a duration: %w", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("-wal-sync: duration must be positive (got %v); use \"batch\" for per-request sync", d)
	}
	return d, nil
}

// bootHandler answers the listener while the estimator is still booting
// (WAL recovery on a large log is the slow case): liveness succeeds
// immediately, readiness reports "not yet", and every other request gets
// a 503 — the socket is open, but nothing can reach a half-built
// estimator.
type bootHandler struct{}

func (bootHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		writeJSON(w, http.StatusOK, map[string]any{"status": "starting"})
	case "/readyz":
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
	default:
		writeError(w, http.StatusServiceUnavailable, "server is starting (estimator recovering)")
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reptserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		m        = fs.Int("m", 10, "sampling denominator; p = 1/m")
		c        = fs.Int("c", 40, "total logical processors across shards")
		shards   = fs.Int("shards", 0, "engine shards (0 = auto)")
		seed     = fs.Int64("seed", 1, "random seed")
		local    = fs.Bool("local", false, "track local (per-node) estimates and degrees (enables /local, /topk, /cc, /query)")
		dynamic  = fs.Bool("dynamic", false, "accept edge deletions (op:\"del\" lines and DELETE /edges); estimates track the net live graph")
		degrees  = fs.Bool("degrees", true, "with -local, also track per-node degrees (disable to restore degree-less snapshots, e.g. pre-upgrade checkpoints)")
		eta      = fs.Bool("eta", false, "force η̂ tracking (variance for every config)")
		batch    = fs.Int("batch", 0, "ingest hand-off batch length (0 = default)")
		hubDeg   = fs.Int("hub-degree", 0, "with -local, split oversized ingest batches touching vertices at or above this stream degree (0 = off); requires degree tracking")
		grace    = fs.Duration("grace", 10*time.Second, "shutdown grace period")
		snapshot = fs.String("snapshot", "", "checkpoint destination path; enables POST /checkpoint")
		restore  = fs.String("restore", "", "boot from this snapshot file instead of empty state")
		interval = fs.Duration("view-interval", 200*time.Millisecond, "max time between query-view epochs")
		vedges   = fs.Uint64("view-edges", 0, "also republish the query view every N ingested edges (0 = off)")
		topk     = fs.Int("topk", 100, "precomputed heavy-hitter ranking size (caps /topk?k=)")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory; enables durable ingest with crash recovery")
		walSync  = fs.String("wal-sync", "batch", "WAL sync policy: \"batch\" (sync before every ingest ack) or a duration (group sync, bounded loss window)")
		walComp  = fs.Uint64("wal-compact-every", 500_000, "fold the WAL into an incremental checkpoint every N events (0 = never)")
		walSeg   = fs.Int64("wal-segment-bytes", 0, "rotate WAL segments at this size (0 = 64MiB default)")
		pprofA   = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		accLog   = fs.Bool("access-log", false, "log every request as a structured JSON line on stderr")
		slowLog  = fs.Duration("slow-log", time.Second, "warn-log any request slower than this (0 = off)")
		memBud   = fs.String("mem-budget", "", "adaptive memory budget with optional byte suffix (e.g. 64MiB, 256M, 1G); enables the control plane: top-K shrinking, sampling downsample, 429 load shedding (empty = off)")
		memHead  = fs.Float64("mem-headroom", 0.10, "soft-watermark fraction of -mem-budget: degradation starts at budget*(1-headroom)")
		memTick  = fs.Duration("mem-tick", time.Second, "memory controller evaluation period (one corrective action per tick)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var walOpt rept.WALOptions
	if *walDir != "" {
		sync, err := parseWALSync(*walSync)
		if err != nil {
			return err
		}
		walOpt = rept.WALOptions{
			Dir:          *walDir,
			SyncInterval: sync,
			SegmentBytes: *walSeg,
			CompactEvery: *walComp,
		}
	}

	// Listen before building the estimator: WAL recovery can take a while
	// on a big log, and an open socket lets liveness probes (and -addr :0
	// port discovery) work during it. Until the estimator is up the
	// listener answers through bootHandler — /healthz 200, /readyz 503,
	// everything else 503 — then the real API is swapped in atomically.
	// The "listening on" banner prints only after the swap, so anything
	// that waits for the banner (tests, scripts) sees a fully-ready
	// server, exactly as before.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	var handler atomic.Pointer[http.Handler]
	boot := http.Handler(bootHandler{})
	handler.Store(&boot)
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	est, err := newEstimator(rept.ConcurrentConfig{
		M:            *m,
		C:            *c,
		Shards:       *shards,
		Seed:         *seed,
		TrackLocal:   *local,
		FullyDynamic: *dynamic,
		TrackEta:     *eta,
		// Degrees ride along with -local: clustering coefficients need
		// both, and the O(V) table is cheap next to the local counters.
		// -degrees=false opts out, which is how a -local deployment
		// restores a checkpoint taken before degree tracking existed
		// (the table is part of the snapshot fingerprint contract).
		TrackDegrees: *local && *degrees,
		HubDegree:    *hubDeg,
		BatchSize:    *batch,
		// The telemetry bundle wires stage-latency histograms, per-shard
		// series, and the flight recorder through the whole pipeline; the
		// server's /metrics and /debug/flight serve from it.
		Telemetry: rept.NewTelemetry(),
	}, *restore, walOpt)
	if err != nil {
		srv.Close()
		return err
	}

	if _, err := est.StartViews(rept.ViewConfig{Interval: *interval, EveryEdges: *vedges, TopK: *topk}); err != nil {
		srv.Close()
		est.Close()
		return err
	}
	api := NewServer(est, *snapshot)
	if *accLog || *slowLog > 0 {
		api.SetAccessLog(slog.New(slog.NewJSONHandler(os.Stderr, nil)), *accLog, *slowLog)
	}

	// Adaptive memory control plane (-mem-budget): an online controller
	// polls the estimator's byte ledger on -mem-tick and degrades in a
	// fixed order — top-K first, then the sampling probability itself —
	// shedding ingest with 429 only when the hard budget is reached.
	var ctrl *control.Controller
	if *memBud != "" {
		budget, err := parseByteSize(*memBud)
		if err != nil {
			srv.Close()
			api.Stop()
			est.Close()
			return fmt.Errorf("-mem-budget: %w", err)
		}
		vw := est.Views()
		ctrl = control.New(control.Config{
			Budget:         budget,
			Headroom:       *memHead,
			MemTotal:       est.MemTotalBytes,
			Processed:      est.Processed,
			SampleShift:    est.SampleShift,
			Downsample:     est.Downsample,
			TopK:           vw.TopK,
			SetTopK:        vw.SetTopK,
			ConfiguredTopK: *topk,
			ViewAge:        func() time.Duration { return vw.View().Age() },
		})
		api.SetController(ctrl)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *restore != "" {
		fmt.Fprintf(os.Stderr, "reptserve: restored %d processed edges from %s\n", est.Processed(), *restore)
	}
	if *walDir != "" {
		fmt.Fprintf(os.Stderr, "reptserve: wal recovered to position %d (dir=%s sync=%s)\n",
			est.Position(), *walDir, *walSync)
	}

	var psrv *http.Server
	if *pprofA != "" {
		pln, err := net.Listen("tcp", *pprofA)
		if err != nil {
			srv.Close()
			api.Stop()
			est.Close()
			return fmt.Errorf("-pprof-addr: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv = &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = psrv.Serve(pln) }()
		// Worded to NOT contain "listening on": scripts (and the crash-test
		// harness) find the API address by scanning for that phrase.
		fmt.Fprintf(os.Stderr, "reptserve: pprof at http://%s/debug/pprof/\n", pln.Addr())
	}

	// The controller ticks only while the live API serves; its Tick calls
	// back into the estimator, so every exit path stops it BEFORE est.Close.
	stopCtrl := func() {}
	if ctrl != nil {
		tick := *memTick
		if tick <= 0 {
			tick = time.Second
		}
		stopc := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-stopc:
					return
				case <-t.C:
					ctrl.Tick()
				}
			}
		}()
		stopCtrl = func() { close(stopc); <-done }
		fmt.Fprintf(os.Stderr, "reptserve: memory budget %s (headroom %.0f%%, tick %v)\n",
			*memBud, *memHead*100, tick)
	}

	live := http.Handler(api)
	handler.Store(&live)
	fmt.Fprintf(os.Stderr, "reptserve: listening on %s (m=%d c=%d shards=%d local=%v dynamic=%v)\n",
		ln.Addr(), *m, *c, est.Shards(), *local, *dynamic)

	select {
	case err := <-errc:
		if psrv != nil {
			psrv.Close()
		}
		stopCtrl()
		api.Stop()
		est.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "reptserve: shutting down")
	stopCtrl()
	if psrv != nil {
		psrv.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	// Stop drains in-flight estimator calls; lingering handlers (when the
	// grace period expired with clients still streaming) answer 503 from
	// here on, so closing the estimator under them is safe.
	api.Stop()
	est.Close()
	if shutdownErr != nil {
		if !errors.Is(shutdownErr, context.DeadlineExceeded) {
			return shutdownErr
		}
		fmt.Fprintln(os.Stderr, "reptserve: grace period expired with requests in flight")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
