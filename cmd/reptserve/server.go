package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rept"
	"rept/internal/control"
	"rept/internal/obs"
)

// maxBodyBatch is the most parsed NDJSON events buffered before a
// forced hand-off to the estimator. Whole request bodies below it are
// ingested as ONE wholesale batch (one delivery ticket, one ring
// message per shard — the amortization ApplyBatch exists for); it
// bounds per-request memory for unbounded streaming bodies at ~1 MiB
// of events.
const maxBodyBatch = 65536

// maxLineLen bounds one NDJSON line (1 MiB, matching the stream reader).
const maxLineLen = 1 << 20

// maxQueryNodes bounds one POST /query batch.
const maxQueryNodes = 100_000

// edgeLine is one NDJSON ingest record: {"u": 1, "v": 2} with an
// optional "op" of "add" (default) or "del". Deletions additionally
// require the server to run with -dynamic.
type edgeLine struct {
	U  *uint32 `json:"u"`
	V  *uint32 `json:"v"`
	Op string  `json:"op"`
}

// endpoints is the fixed per-endpoint request-counter key set; paths
// outside it count under "other".
var endpoints = []string{
	"/edges", "/estimate", "/local", "/topk", "/cc", "/query",
	"/stats", "/metrics", "/checkpoint", "/healthz", "/readyz",
	"/debug/flight", "other",
}

// Server exposes a Concurrent REPT estimator over HTTP. All handlers are
// safe for concurrent requests; ingestion from any number of clients maps
// directly onto Concurrent's goroutine-safe Add path, and queries answer
// from the estimator's epoch views (see rept.Concurrent.StartViews), so
// read throughput does not collapse under ingest. Every view-backed
// response reports the epoch it answered from, its wall-clock age, and
// the processed count it describes; `?fresh=1` forces a fresh barrier
// epoch first (the SnapshotNow escape hatch over HTTP).
type Server struct {
	est      *rept.Concurrent
	views    *rept.Views
	mux      *http.ServeMux
	start    time.Time
	requests atomic.Uint64
	counters map[string]*obs.Counter

	// tele is the estimator's telemetry bundle (or a private one when the
	// estimator was built without ConcurrentConfig.Telemetry); its
	// registry backs /metrics and its flight recorder /debug/flight. pipe
	// is the stage-instrument bundle the ingest handler records parse
	// latency into.
	tele *rept.Telemetry
	pipe *obs.Pipeline

	// ready is the /readyz state: true once construction finished (the
	// estimator recovered and the first view published), false again
	// after Stop — the LB-drain signal /healthz (liveness) never sends.
	ready atomic.Bool

	// Structured request logging (SetAccessLog): accessLog receives one
	// record per request when logAll, and a warning for requests slower
	// than slow (0 disables the slow path). reqSeq numbers requests.
	accessLog *slog.Logger
	logAll    bool
	slow      time.Duration
	reqSeq    atomic.Uint64

	// snapshotPath is the checkpoint destination (-snapshot flag); empty
	// disables POST /checkpoint. checkpointMu serializes checkpoints so
	// two concurrent requests cannot race on the rename.
	snapshotPath string
	checkpointMu sync.Mutex

	// durable routes ingest through the write-ahead log: /edges responds
	// only after the estimator acknowledges durability, and a WAL failure
	// turns into a 500 with the events NOT counted as accepted.
	durable bool

	// ctrl is the adaptive memory controller (-mem-budget); nil without a
	// budget. When set, /edges sheds with 429 + Retry-After while the
	// controller reports budget overrun — distinct from the 503 shutdown
	// path — and /stats and /readyz carry the budget posture.
	ctrl *control.Controller

	// mu guards estimator access against Stop: handlers hold the read
	// lock around each estimator call, Stop takes the write lock to
	// drain them before the estimator is closed underneath.
	mu      sync.RWMutex
	closing bool
}

// NewServer wraps est in an HTTP API. The caller keeps ownership of est
// (the server never closes it). Views must either already be started on
// est (main starts them with flag-driven intervals) or NewServer starts
// them with defaults. snapshotPath is where POST /checkpoint writes
// snapshots; empty disables the endpoint.
func NewServer(est *rept.Concurrent, snapshotPath string) *Server {
	views := est.Views()
	if views == nil {
		if v, err := est.StartViews(rept.ViewConfig{}); err == nil {
			views = v
		} else {
			// The only error is "already started": someone else won the
			// race, so their publisher is registered and non-nil.
			views = est.Views()
		}
	}
	tele := est.Telemetry()
	if tele == nil {
		// An uninstrumented estimator still gets a registry so /metrics
		// works; the pipeline stage histograms then record only what the
		// server itself observes (parse latency).
		tele = rept.NewTelemetry()
	}
	s := &Server{
		est:          est,
		views:        views,
		mux:          http.NewServeMux(),
		start:        time.Now(),
		tele:         tele,
		pipe:         tele.Pipeline(),
		snapshotPath: snapshotPath,
		durable:      est.Durable(),
		counters:     make(map[string]*obs.Counter, len(endpoints)),
	}
	s.registerMetrics()
	s.mux.HandleFunc("/edges", s.handleEdges)
	s.mux.HandleFunc("/estimate", s.handleEstimate)
	s.mux.HandleFunc("/local", s.handleLocal)
	s.mux.HandleFunc("/topk", s.handleTopK)
	s.mux.HandleFunc("/cc", s.handleCC)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/flight", s.handleFlight)
	// Construction implies the estimator recovered (WAL replay happens in
	// ResumeDurable, before NewServer can run) and the first view
	// published (StartViews publishes epoch 1 synchronously).
	s.ready.Store(true)
	return s
}

// SetController attaches the adaptive memory controller and registers
// its /metrics series (budget, adaptation and shed counters). Call
// before serving, at most once; the ingest handler, /stats, and /readyz
// consult the controller from then on. The caller owns the controller's
// tick loop — the server only reads its state.
func (s *Server) SetController(c *control.Controller) {
	s.ctrl = c
	reg := s.tele.Registry()
	st := c.Status()
	reg.GaugeFunc("rept_mem_budget_bytes",
		"Hard memory budget (-mem-budget); ingest sheds at or above it.",
		func() float64 { return float64(st.Budget) })
	reg.GaugeFunc("rept_mem_soft_limit_bytes",
		"Soft watermark (budget minus headroom); degradation starts here.",
		func() float64 { return float64(st.SoftLimit) })
	reg.GaugeFunc("rept_mem_state",
		"Controller posture: 0 normal, 1 pressure (degrading), 2 shedding.",
		func() float64 { return float64(c.State()) })
	reg.CounterFunc("rept_adaptations_total",
		"Sampling-probability downsample events driven by the memory controller.",
		c.Adaptations)
	reg.CounterFunc("rept_shed_requests_total",
		"Ingest requests refused with 429 under the memory budget.",
		c.ShedTotal)
}

// SetAccessLog enables structured request logging on l: every request at
// Info level when logAll, plus a Warn for any request slower than slow
// (0 disables the slow-request path). Call before serving.
func (s *Server) SetAccessLog(l *slog.Logger, logAll bool, slow time.Duration) {
	s.accessLog = l
	s.logAll = logAll
	s.slow = slow
}

// registerMetrics installs every /metrics series on the telemetry
// registry. All series are read at scrape time from atomics or the last
// published view — never through a barrier — so scrapes stay cheap and
// keep answering through shutdown. Called once per server; the registry
// panics on duplicates, so two servers must not share one telemetry.
func (s *Server) registerMetrics() {
	reg := s.tele.Registry()
	est := s.est
	views := s.views
	reg.CounterFunc("rept_processed_edges_total",
		"Non-loop edge events accepted, insertions plus deletions (live).", est.Processed)
	reg.CounterFunc("rept_deleted_edges_total",
		"Non-loop edge deletion events accepted (live).", est.Deleted)
	reg.CounterFunc("rept_self_loops_total",
		"Self-loop arrivals skipped (live).", est.SelfLoops)
	reg.GaugeFunc("rept_sampled_edges",
		"Edges stored across all logical processors at the view prefix.",
		func() float64 { return float64(views.View().SampledEdges) })
	reg.CounterFunc("rept_eta_saturations_total",
		"Per-edge eta counter clamps at the view prefix (non-zero flags an adversarially hot edge).",
		func() uint64 { return views.View().EtaSaturations })
	reg.GaugeFunc("rept_shards",
		"Engine shard count.", func() float64 { return float64(est.Shards()) })
	// rept_view_epoch and rept_view_processed_edges were historically
	// declared counter, but both reset when the server restores from a
	// snapshot or WAL checkpoint — they are gauges, retyped in place.
	reg.GaugeFunc("rept_view_epoch",
		"Epoch number of the current view (resets on restore).",
		func() float64 { return float64(views.View().Epoch) })
	reg.GaugeFunc("rept_view_age_seconds",
		"Wall-clock age of the current view.",
		func() float64 { return views.View().Age().Seconds() })
	reg.GaugeFunc("rept_view_processed_edges",
		"Non-loop edges at the current view's prefix (resets on restore).",
		func() float64 { return float64(views.View().Processed) })
	reg.GaugeFunc("rept_uptime_seconds",
		"Server uptime.", func() float64 { return time.Since(s.start).Seconds() })
	// Memory ledger: one snapshot per scrape (OnCollect), fanned out into
	// per-component series — accounting is always on, so these register
	// unconditionally.
	var memSnap rept.MemStats
	reg.OnCollect(func() { memSnap = est.MemStats() })
	memVec := reg.GaugeVec("rept_mem_bytes",
		"Accounted backing bytes by storage component (capacity-granular ledger).",
		"component")
	comps := make([]string, 0, len(est.MemStats().ByComponent))
	for name := range est.MemStats().ByComponent {
		comps = append(comps, name)
	}
	sort.Strings(comps)
	for _, name := range comps {
		name := name
		memVec.Func(name, func() float64 { return float64(memSnap.ByComponent[name]) })
	}
	reg.GaugeFunc("rept_mem_heap_bytes",
		"Accounted process-memory total (every component except wal_segments); the budget is enforced against this.",
		func() float64 { return float64(memSnap.HeapBytes) })
	reg.GaugeFunc("rept_sample_shift",
		"Cumulative downsampling shift k: effective p = 1/(m*2^k).",
		func() float64 { return float64(est.SampleShift()) })
	reg.GaugeFunc("rept_sample_probability",
		"Effective per-edge sampling probability after adaptation.",
		est.SampleProbability)
	reg.GaugeFunc("rept_variance_bound",
		"Plug-in variance bound of the global estimate at the effective sampling probability; steps up after every adaptation.",
		est.VarianceBound)
	if s.durable {
		reg.CounterFunc("rept_wal_appended_events_total",
			"Events written into the write-ahead log.",
			func() uint64 { return est.WALStats().AppendedPos })
		reg.CounterFunc("rept_wal_durable_events_total",
			"Events covered by a WAL sync (survive a crash).",
			func() uint64 { return est.WALStats().DurablePos })
		reg.CounterFunc("rept_wal_checkpoint_events_total",
			"Events folded into the latest WAL checkpoint.",
			func() uint64 { return est.WALStats().CheckpointPos })
		reg.GaugeFunc("rept_wal_sync_lag_events",
			"Appended-but-unsynced events (the crash loss window).",
			func() float64 { st := est.WALStats(); return float64(st.AppendedPos - st.DurablePos) })
		reg.GaugeFunc("rept_wal_segments",
			"WAL segment files on disk, including the active one.",
			func() float64 { return float64(est.WALStats().Segments) })
		reg.GaugeFunc("rept_wal_active_segment_bytes",
			"Size of the active WAL segment.",
			func() float64 { return float64(est.WALStats().ActiveBytes) })
		reg.GaugeFunc("rept_wal_live_bytes",
			"Live log bytes on disk: sealed clean extents plus the active segment (compaction shrinks it).",
			func() float64 { return float64(est.WALStats().LiveBytes) })
		reg.GaugeFunc("rept_wal_failed",
			"1 when the WAL has failed and durable ingest is refusing events.",
			func() float64 {
				if est.WALStats().Failed {
					return 1
				}
				return 0
			})
		reg.CounterFunc("rept_wal_compaction_failures_total",
			"Automatic WAL compactions that failed.", est.WALCompactionFailures)
	}
	reg.CounterFunc("rept_http_requests_all_total",
		"HTTP requests served, all endpoints.", s.requests.Load)
	// The deprecated rept_http_requests_total_all alias was kept exactly
	// one release past the rename and is now gone; dashboards must use
	// rept_http_requests_all_total.
	httpVec := reg.CounterVec("rept_http_requests_total",
		"HTTP requests served per endpoint.", "endpoint")
	// Children register in sorted order so scrapes are diff-stable.
	eps := append([]string(nil), endpoints...)
	sort.Strings(eps)
	for _, ep := range eps {
		s.counters[ep] = httpVec.With(ep)
	}
}

// statusRecorder captures the response status and size for access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if c, ok := s.counters[r.URL.Path]; ok {
		c.Inc()
	} else {
		s.counters["other"].Inc()
	}
	if s.accessLog == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	id := s.reqSeq.Add(1)
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	d := time.Since(start)
	if s.slow > 0 && d >= s.slow {
		s.accessLog.Warn("slow request",
			"req_id", id, "method", r.Method, "path", r.URL.Path,
			"status", rec.status, "bytes", rec.bytes,
			"dur_ms", float64(d.Microseconds())/1e3,
			"slow_threshold_ms", float64(s.slow.Microseconds())/1e3,
			"remote", r.RemoteAddr)
	} else if s.logAll {
		s.accessLog.Info("request",
			"req_id", id, "method", r.Method, "path", r.URL.Path,
			"status", rec.status, "bytes", rec.bytes,
			"dur_ms", float64(d.Microseconds())/1e3,
			"remote", r.RemoteAddr)
	}
}

// Stop marks the server as shutting down and waits for in-flight
// estimator calls to finish. After Stop, handlers answer 503 instead of
// touching the estimator, so the owner may safely Close it even while
// lingering connections (e.g. after an http.Server.Shutdown timeout) are
// still being served.
func (s *Server) Stop() {
	s.ready.Store(false)
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
}

// estCall runs f under the read lock unless the server is stopping.
// Handlers must route every estimator access through it.
func (s *Server) estCall(f func()) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closing {
		return false
	}
	f()
	return true
}

// fetchView returns the view to answer from: the current epoch, or a
// freshly published one when the request carries fresh=1. false means the
// server is stopping (handler must answer 503).
func (s *Server) fetchView(r *http.Request) (*rept.View, bool) {
	var v *rept.View
	ok := s.estCall(func() {
		if r.URL.Query().Get("fresh") == "1" {
			v = s.views.Refresh()
		} else {
			v = s.views.View()
		}
	})
	return v, ok
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeStopping(w http.ResponseWriter) {
	writeError(w, http.StatusServiceUnavailable, "server is shutting down")
}

// viewMeta is the staleness report embedded in every view-backed
// response: which epoch answered, how old it is, and the stream prefix
// (processed count) it describes.
type viewMeta struct {
	Epoch         uint64  `json:"epoch"`
	AgeMs         float64 `json:"ageMs"`
	AsOfProcessed uint64  `json:"asOfProcessed"`
}

func metaOf(v *rept.View) viewMeta {
	return viewMeta{
		Epoch:         v.Epoch,
		AgeMs:         float64(v.Age().Microseconds()) / 1e3,
		AsOfProcessed: v.Processed,
	}
}

// nodeJSON is one node's answer row. Degree appears only when the server
// tracks degrees, cc only when additionally the degree is >= 2.
type nodeJSON struct {
	V      uint32   `json:"v"`
	Local  float64  `json:"local"`
	Degree *uint32  `json:"degree,omitempty"`
	CC     *float64 `json:"cc,omitempty"`
}

func nodeRow(v *rept.View, n rept.NodeID) nodeJSON {
	return statRow(v, v.Stat(n))
}

// statRow converts an already-materialized NodeStat (e.g. a precomputed
// TopK entry) without re-touching the view's maps.
func statRow(v *rept.View, st rept.NodeStat) nodeJSON {
	row := nodeJSON{V: uint32(st.Node), Local: st.Local}
	if v.Degrees != nil {
		d := st.Degree
		row.Degree = &d
	}
	if !math.IsNaN(st.CC) {
		cc := st.CC
		row.CC = &cc
	}
	return row
}

// ingestResponse summarizes one POST/DELETE /edges request.
type ingestResponse struct {
	// Accepted counts non-loop events ingested from this request body.
	// On a durable server (-wal-dir) an event counts as accepted only
	// once the write-ahead log has acknowledged it, so a 200 response is
	// a durability receipt for every accepted event.
	Accepted int `json:"accepted"`
	// Deleted counts how many of the accepted events were deletions.
	Deleted int `json:"deleted,omitempty"`
	// SelfLoops counts self-loop lines skipped in this request body.
	SelfLoops int `json:"selfLoops"`
	// Processed is the estimator's total non-loop event count afterwards
	// (all clients combined).
	Processed uint64 `json:"processed"`
	// Durable is true when the accepted events went through the
	// write-ahead log (the server runs with -wal-dir).
	Durable bool `json:"durable,omitempty"`
}

// ingestBuffers is the per-request scratch of handleEdges — the scanner's
// line buffer and the event batch — pooled so steady-state ingest does
// not allocate per request. The batch's backing array survives in the
// pool (Batch.Reset keeps it), so repeat requests of similar size reach
// a zero-allocation steady state.
type ingestBuffers struct {
	line  []byte
	batch rept.Batch
}

var ingestPool = sync.Pool{
	New: func() any {
		return &ingestBuffers{line: make([]byte, 0, 64*1024)}
	},
}

// handleEdges ingests NDJSON edge events: one {"u":..,"v":..} object per
// line, each carrying an optional "op" of "add" (default) or "del".
// POST defaults lines to insertions; DELETE defaults them to deletions
// (so `curl -X DELETE` with plain {"u":..,"v":..} lines unfollows edges),
// and either default can be overridden per line via "op". Deletion events
// require the server to run with -dynamic (409 otherwise). Blank lines
// are skipped. On a malformed line the request fails with 400 after
// reporting the line number; lines before it are already ingested
// (ingestion is streaming, not transactional).
//
// Lines are parsed by the zero-copy scanner in ndjson.go, falling back
// to encoding/json per line for anything outside the fast shape.
// Accepted/Deleted/SelfLoops count only events actually handed to the
// estimator: events parsed into a batch that a shutdown-refused flush
// drops are NOT reported as accepted (they were not ingested), so the
// counts in both success and error responses are exact.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodDelete {
		w.Header().Set("Allow", "POST, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "POST (insert) or DELETE (remove) NDJSON edge lines to /edges")
		return
	}
	// Load shedding: the memory controller refuses ingest BEFORE the body
	// is read — 429 + Retry-After while the budget is overrun, distinct
	// from the 503 shutdown path (the server is healthy and still serving
	// queries; the client should back off and retry).
	if c := s.ctrl; c != nil && c.ShouldShed() {
		c.CountShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "memory budget exceeded; ingest is shedding while the estimator adapts (retry shortly)")
		return
	}
	defaultDel := r.Method == http.MethodDelete
	dynamic := s.est.Config().FullyDynamic
	if defaultDel && !dynamic {
		writeError(w, http.StatusConflict, "edge deletions are disabled; start reptserve with -dynamic")
		return
	}
	bufs := ingestPool.Get().(*ingestBuffers)
	defer func() {
		bufs.batch.Reset()
		ingestPool.Put(bufs)
	}()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(bufs.line[:0], maxLineLen)

	var resp ingestResponse
	resp.Durable = s.durable
	batch := &bufs.batch
	batch.Reset()
	// pend tallies the events sitting in the unflushed batch; they are
	// credited to resp only once a flush hands them to the estimator.
	var pend struct{ accepted, deleted, loops int }
	// walErr is the sticky write-ahead-log failure: once set, no further
	// events are credited (durability is unknown for them at best) and
	// the request fails with 500.
	var walErr error
	// segStart opens the current parse segment: everything between two
	// flushes — reading the request body and decoding up to maxBodyBatch
	// NDJSON lines — is one rept_stage_parse_seconds observation.
	segStart := time.Now()
	// flush hands the whole parsed body (or a maxBodyBatch-long slab of
	// an oversized one) to the estimator as one wholesale batch; false
	// means the server is shutting down (503) or, on a durable server,
	// the log refused the batch (walErr set, 500) — either way the
	// batch's pending tallies are discarded, not reported, because the
	// events were not accepted under the response's contract.
	flush := func() bool {
		if batch.Len() == 0 {
			return true
		}
		d := time.Since(segStart)
		s.pipe.Parse.ObserveDuration(d)
		s.pipe.Flight.Record(obs.KindParse, -1, uint64(batch.Len()), d)
		credited := false
		ok := s.estCall(func() {
			if s.durable {
				walErr = s.est.ApplyBatchDurable(batch)
				credited = walErr == nil
			} else {
				s.est.ApplyBatch(batch)
				credited = true
			}
		})
		batch.Reset()
		segStart = time.Now()
		if ok && credited {
			resp.Accepted += pend.accepted
			resp.Deleted += pend.deleted
			resp.SelfLoops += pend.loops
		}
		pend.accepted, pend.deleted, pend.loops = 0, 0, 0
		return ok && credited
	}
	// failFlush writes the response for a failed flush: 500 for a WAL
	// failure, 503 for shutdown.
	failFlush := func() {
		if walErr != nil {
			writeError(w, http.StatusInternalServerError, "write-ahead log: %v (accepted %d events)", walErr, resp.Accepted)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "server is shutting down (accepted %d events)", resp.Accepted)
	}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		u, v, op, fast := parseEdgeLine(raw)
		var opName string
		if fast {
			switch op {
			case opAdd:
				opName = "add"
			case opDel:
				opName = "del"
			}
		} else {
			// Outside the fast shape: let encoding/json produce the exact
			// historical behavior (and error text).
			var el edgeLine
			if err := json.Unmarshal(raw, &el); err != nil {
				flush()
				writeError(w, http.StatusBadRequest, "line %d: %v (accepted %d events before it)", line, err, resp.Accepted)
				return
			}
			if el.U == nil || el.V == nil {
				flush()
				writeError(w, http.StatusBadRequest, "line %d: need both \"u\" and \"v\" (accepted %d events before it)", line, resp.Accepted)
				return
			}
			u, v, opName = *el.U, *el.V, el.Op
		}
		del := defaultDel
		switch opName {
		case "": // keep the method's default
		case "add":
			del = false
		case "del", "delete":
			del = true
		default:
			flush()
			writeError(w, http.StatusBadRequest, "line %d: op %q, want \"add\" or \"del\" (accepted %d events before it)", line, opName, resp.Accepted)
			return
		}
		if del && !dynamic {
			flush()
			writeError(w, http.StatusConflict, "line %d: edge deletions are disabled; start reptserve with -dynamic (accepted %d events before it)", line, resp.Accepted)
			return
		}
		// Self-loops ride along so the estimator's own SelfLoops counter
		// (surfaced by /estimate) stays consistent; ApplyAll skips them.
		if u == v {
			pend.loops++
		} else {
			pend.accepted++
			if del {
				pend.deleted++
			}
		}
		batch.Push(rept.Update{U: rept.NodeID(u), V: rept.NodeID(v), Del: del})
		if batch.Len() >= maxBodyBatch && !flush() {
			failFlush()
			return
		}
	}
	if err := sc.Err(); err != nil {
		flush()
		writeError(w, http.StatusBadRequest, "reading body: %v (accepted %d events)", err, resp.Accepted)
		return
	}
	if !flush() {
		failFlush()
		return
	}
	resp.Processed = s.est.Processed()
	writeJSON(w, http.StatusOK, resp)
}

// estimateResponse is the GET /estimate payload. StdErr and Variance are
// omitted when the configuration does not track the η counters they need
// (JSON has no NaN). Processed and SelfLoops are the tallies AT the
// view's prefix (equal to asOfProcessed for the former).
type estimateResponse struct {
	viewMeta
	Global   float64  `json:"global"`
	Variance *float64 `json:"variance,omitempty"`
	StdErr   *float64 `json:"stderr,omitempty"`
	EtaHat   float64  `json:"etaHat"`
	// Processed counts non-loop events (insertions plus deletions) at the
	// view's prefix; Deleted the deletions alone (omitted when zero).
	Processed uint64 `json:"processed"`
	Deleted   uint64 `json:"deleted,omitempty"`
	SelfLoops uint64 `json:"selfLoops"`
}

// handleEstimate serves GET /estimate from the current epoch view (no
// barrier, no cross-shard coordination): the global estimate with its
// variance when tracked, plus the epoch/staleness report. `?fresh=1`
// publishes a fresh epoch first.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /estimate")
		return
	}
	v, ok := s.fetchView(r)
	if !ok {
		writeStopping(w)
		return
	}
	resp := estimateResponse{
		viewMeta:  metaOf(v),
		Global:    v.Global,
		EtaHat:    v.EtaHat,
		Processed: v.Processed,
		Deleted:   v.Deleted,
		SelfLoops: v.SelfLoops,
	}
	if !math.IsNaN(v.Variance) {
		vv, se := v.Variance, math.Sqrt(v.Variance)
		resp.Variance, resp.StdErr = &vv, &se
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseNode pulls the required uint32 node id from query parameter "v".
func parseNode(w http.ResponseWriter, r *http.Request) (rept.NodeID, bool) {
	q := r.URL.Query().Get("v")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter v")
		return 0, false
	}
	v, err := strconv.ParseUint(q, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "v must be a uint32 node id: %v", err)
		return 0, false
	}
	return rept.NodeID(v), true
}

// handleLocal serves GET /local?v=<node>: the local triangle estimate of
// one node, answered from the current view in O(1). 409 when the server
// runs without -local.
func (s *Server) handleLocal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /local?v=<node>")
		return
	}
	if !s.est.Config().TrackLocal {
		writeError(w, http.StatusConflict, "local tracking is disabled; start reptserve with -local")
		return
	}
	n, ok := parseNode(w, r)
	if !ok {
		return
	}
	v, ok := s.fetchView(r)
	if !ok {
		writeStopping(w)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		viewMeta
		V     uint32  `json:"v"`
		Local float64 `json:"local"`
	}{metaOf(v), uint32(n), v.LocalOf(n)})
}

// handleTopK serves GET /topk?k=<n>: the strongest nodes by local
// triangle estimate, straight from the view's precomputed ranking
// (O(k) per request). k defaults to, and is capped by, the -topk ranking
// size. 409 without -local.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /topk?k=<n>")
		return
	}
	if !s.est.Config().TrackLocal {
		writeError(w, http.StatusConflict, "top-k needs local tracking; start reptserve with -local")
		return
	}
	limit := s.views.Config().TopK
	k := limit
	if q := r.URL.Query().Get("k"); q != "" {
		kq, err := strconv.Atoi(q)
		if err != nil || kq < 0 {
			writeError(w, http.StatusBadRequest, "k must be a non-negative integer")
			return
		}
		if kq > limit {
			writeError(w, http.StatusBadRequest, "k = %d exceeds the precomputed ranking size %d (raise -topk)", kq, limit)
			return
		}
		k = kq
	}
	v, ok := s.fetchView(r)
	if !ok {
		writeStopping(w)
		return
	}
	top := v.Top(k)
	rows := make([]nodeJSON, len(top))
	for i, st := range top {
		rows[i] = statRow(v, st)
	}
	writeJSON(w, http.StatusOK, struct {
		viewMeta
		K     int        `json:"k"`
		Nodes []nodeJSON `json:"nodes"`
	}{metaOf(v), len(rows), rows})
}

// handleCC serves GET /cc?v=<node>: the node's plug-in local clustering
// coefficient 2·τ̂_v/(d·(d−1)). The cc field is omitted when undefined
// (degree < 2). 409 unless the server tracks both locals and degrees.
func (s *Server) handleCC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /cc?v=<node>")
		return
	}
	cfg := s.est.Config()
	if !cfg.TrackLocal || !cfg.TrackDegrees {
		writeError(w, http.StatusConflict, "clustering coefficients need local and degree tracking; start reptserve with -local (and without -degrees=false)")
		return
	}
	n, ok := parseNode(w, r)
	if !ok {
		return
	}
	v, ok := s.fetchView(r)
	if !ok {
		writeStopping(w)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		viewMeta
		nodeJSON
	}{metaOf(v), nodeRow(v, n)})
}

// queryRequest is the POST /query body: a batch node lookup.
type queryRequest struct {
	Nodes []uint32 `json:"nodes"`
}

// handleQuery serves POST /query: one view lookup for a whole batch of
// nodes, every row answered from the SAME epoch (a sequence of /local
// calls could straddle epochs). 409 without -local.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST /query with {\"nodes\":[...]}")
		return
	}
	if !s.est.Config().TrackLocal {
		writeError(w, http.StatusConflict, "node queries need local tracking; start reptserve with -local")
		return
	}
	var req queryRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxLineLen))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "body: %v", err)
		return
	}
	if len(req.Nodes) > maxQueryNodes {
		writeError(w, http.StatusBadRequest, "%d nodes exceeds the %d per-request cap", len(req.Nodes), maxQueryNodes)
		return
	}
	v, ok := s.fetchView(r)
	if !ok {
		writeStopping(w)
		return
	}
	rows := make([]nodeJSON, len(req.Nodes))
	for i, n := range req.Nodes {
		rows[i] = nodeRow(v, rept.NodeID(n))
	}
	writeJSON(w, http.StatusOK, struct {
		viewMeta
		Results []nodeJSON `json:"results"`
	}{metaOf(v), rows})
}

// statsResponse is the GET /stats payload: the view/staleness state plus
// live ingest counters, in one place.
type statsResponse struct {
	viewMeta
	// StaleEdges is how many edges arrived after the view's prefix.
	StaleEdges uint64 `json:"staleEdges"`
	// Processed/Deleted/SelfLoops are the LIVE tallies (the view's are in
	// viewMeta and /estimate).
	Processed    uint64 `json:"processed"`
	Deleted      uint64 `json:"deleted"`
	SelfLoops    uint64 `json:"selfLoops"`
	SampledEdges int    `json:"sampledEdges"`
	// EtaSaturations counts η counter clamps at the view prefix; non-zero
	// flags an adversarially hot edge (η̂ is then a bounded
	// under-estimate).
	EtaSaturations uint64            `json:"etaSaturations"`
	Shards         int               `json:"shards"`
	TopK           int               `json:"topK"`
	IntervalMs     float64           `json:"viewIntervalMs"`
	Uptime         string            `json:"uptime"`
	Requests       map[string]uint64 `json:"requests"`
	// WAL is the write-ahead-log report; present only with -wal-dir.
	WAL *walStatsJSON `json:"wal,omitempty"`
	// Memory is the accounted-bytes ledger breakdown (always present —
	// accounting is always on).
	Memory *memStatsJSON `json:"memory"`
	// Budget is the adaptive controller's report; present only with
	// -mem-budget.
	Budget *control.Status `json:"budget,omitempty"`
}

// memStatsJSON is the /stats memory block: the component ledger plus the
// adaptive-sampling state it feeds.
type memStatsJSON struct {
	// ByComponent maps component names (adjacency, counters, degrees,
	// masks, rings, batches, wal_buffers, wal_segments, views) to
	// accounted backing bytes.
	ByComponent map[string]int64 `json:"byComponent"`
	// HeapBytes is the process-memory total the budget is enforced
	// against; WALSegmentBytes the disk-class live log footprint.
	HeapBytes       int64 `json:"heapBytes"`
	WALSegmentBytes int64 `json:"walSegmentBytes,omitempty"`
	// SampleShift/SampleProbability describe the effective sampling after
	// adaptation; VarianceBound is the plug-in accuracy price paid for it
	// (omitted when undefined).
	SampleShift       int      `json:"sampleShift"`
	SampleProbability float64  `json:"sampleProbability"`
	VarianceBound     *float64 `json:"varianceBound,omitempty"`
}

// memStats assembles the /stats memory block.
func (s *Server) memStats() *memStatsJSON {
	ms := s.est.MemStats()
	out := &memStatsJSON{
		ByComponent:       ms.ByComponent,
		HeapBytes:         ms.HeapBytes,
		WALSegmentBytes:   ms.WALSegmentBytes,
		SampleShift:       s.est.SampleShift(),
		SampleProbability: s.est.SampleProbability(),
	}
	if vb := s.est.VarianceBound(); !math.IsNaN(vb) && !math.IsInf(vb, 0) {
		out.VarianceBound = &vb
	}
	return out
}

// walStatsJSON is the /stats write-ahead-log block. All positions count
// accepted non-loop events since the estimator's birth.
type walStatsJSON struct {
	// AppendedPos/DurablePos/CheckpointPos are the log's three frontiers:
	// written into the active segment, covered by a sync, and folded into
	// the latest checkpoint.
	AppendedPos   uint64 `json:"appendedPos"`
	DurablePos    uint64 `json:"durablePos"`
	CheckpointPos uint64 `json:"checkpointPos"`
	// SyncLagEvents is AppendedPos-DurablePos: the events that would be
	// lost by a crash right now (bounded by the -wal-sync interval; ~0 in
	// batch mode).
	SyncLagEvents uint64 `json:"syncLagEvents"`
	// Segments counts log segment files (including the active one);
	// ActiveBytes is the active segment's size.
	Segments    int   `json:"segments"`
	ActiveBytes int64 `json:"activeBytes"`
	// Failed means the log refused a write or sync; durable ingest is
	// refusing events until restart.
	Failed bool `json:"failed"`
	// CompactionFailures counts automatic compactions that failed (the
	// log keeps growing until one succeeds).
	CompactionFailures uint64 `json:"compactionFailures,omitempty"`
}

// walStats assembles the /stats WAL block; nil when the server is not
// durable.
func (s *Server) walStats() *walStatsJSON {
	if !s.durable {
		return nil
	}
	st := s.est.WALStats()
	return &walStatsJSON{
		AppendedPos:        st.AppendedPos,
		DurablePos:         st.DurablePos,
		CheckpointPos:      st.CheckpointPos,
		SyncLagEvents:      st.AppendedPos - st.DurablePos,
		Segments:           st.Segments,
		ActiveBytes:        st.ActiveBytes,
		Failed:             st.Failed,
		CompactionFailures: s.est.WALCompactionFailures(),
	}
}

// handleStats serves GET /stats: epoch and staleness state, ingest
// counters, and per-endpoint request counts. Unlike /estimate it mixes
// view-prefix values (sampledEdges) with live tallies, each labeled.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /stats")
		return
	}
	v, ok := s.fetchView(r)
	if !ok {
		writeStopping(w)
		return
	}
	processed := s.est.Processed()
	reqs := make(map[string]uint64, len(s.counters))
	for ep, c := range s.counters {
		reqs[ep] = c.Value()
	}
	writeJSON(w, http.StatusOK, statsResponse{
		viewMeta:       metaOf(v),
		StaleEdges:     processed - v.Processed,
		Processed:      processed,
		Deleted:        s.est.Deleted(),
		SelfLoops:      s.est.SelfLoops(),
		SampledEdges:   v.SampledEdges,
		EtaSaturations: v.EtaSaturations,
		Shards:         s.est.Shards(),
		TopK:           s.views.Config().TopK,
		IntervalMs:     float64(s.views.Config().Interval.Microseconds()) / 1e3,
		Uptime:         time.Since(s.start).Round(time.Millisecond).String(),
		Requests:       reqs,
		WAL:            s.walStats(),
		Memory:         s.memStats(),
		Budget:         s.budgetStatus(),
	})
}

// handleMetrics serves GET /metrics in Prometheus text exposition format.
// It touches only atomic counters and the last published view, so — like
// /healthz — it keeps answering through shutdown: scrapes never block on
// ingest and never take a barrier.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /metrics")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.tele.WritePrometheus(w)
}

// budgetStatus returns the controller's point-in-time report, or nil
// without -mem-budget.
func (s *Server) budgetStatus() *control.Status {
	if s.ctrl == nil {
		return nil
	}
	st := s.ctrl.Status()
	return &st
}

// handleReadyz serves GET /readyz, the load-balancer readiness signal:
// 200 once the estimator has recovered (WAL replay done) and the first
// view published, 503 from the moment Stop runs. Distinct from /healthz,
// which reports liveness and keeps answering 200 through a graceful
// drain. With -mem-budget the response carries the budget posture —
// shedding does NOT flip readiness (queries still serve; only ingest is
// refused, per-request, with 429).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
		})
		return
	}
	v := s.views.View()
	resp := map[string]any{
		"status":    "ready",
		"epoch":     v.Epoch,
		"processed": v.Processed,
	}
	if s.ctrl != nil {
		resp["budget"] = map[string]any{
			"state":    s.ctrl.State().String(),
			"shedding": s.ctrl.ShouldShed(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// defaultFlightEvents is the /debug/flight response cap when no ?n= is
// given: recent enough for a postmortem tail without shipping the whole
// multi-thousand-entry ring on every curl.
const defaultFlightEvents = 1024

// handleFlight serves GET /debug/flight: a JSON dump of the flight
// recorder — recent pipeline events (parse, dispatch, apply, barrier,
// WAL append/sync, view publish) with nanosecond timestamps and
// durations, oldest first. ?n= caps the dump to the NEWEST n events
// (default 1024; n larger than the ring returns everything recorded).
// "recorded" always reports the full ring occupancy, so a truncated
// dump is recognizable as one. The dump is lock-free on the recording
// side; a heavily concurrent writer can at worst drop a slot from one
// dump.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /debug/flight")
		return
	}
	n := defaultFlightEvents
	if q := r.URL.Query().Get("n"); q != "" {
		nq, err := strconv.Atoi(q)
		if err != nil || nq < 0 {
			writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = nq
	}
	events := s.tele.Flight().Events()
	recorded := len(events)
	if n < recorded {
		events = events[recorded-n:] // keep the newest n (events are oldest-first)
	}
	writeJSON(w, http.StatusOK, struct {
		Recorded int               `json:"recorded"`
		Returned int               `json:"returned"`
		Events   []obs.FlightEvent `json:"events"`
	}{recorded, len(events), events})
}

// checkpointResponse is the POST /checkpoint payload.
type checkpointResponse struct {
	// Path is the snapshot file written; empty on a durable server
	// running without -snapshot (the WAL checkpoint is the only output).
	Path string `json:"path,omitempty"`
	// Bytes is the size of the snapshot file.
	Bytes int64 `json:"bytes,omitempty"`
	// Processed is the estimator's non-loop edge count when the response
	// was built. The snapshot itself is barrier-consistent at its own
	// prefix, which this count can only exceed (by edges that clients
	// streamed while the checkpoint was written).
	Processed uint64 `json:"processed"`
	// WAL reports the log after the compaction this request ran; only on
	// durable servers.
	WAL *walStatsJSON `json:"wal,omitempty"`
}

// handleCheckpoint serves POST /checkpoint: a barrier-consistent snapshot
// of the estimator, written atomically (temp file in the destination
// directory, fsync, rename) so a crash mid-checkpoint can never clobber
// the previous snapshot. On a durable server the request also compacts
// the write-ahead log — the sealed segments fold into the log's own
// checkpoint — so operators get an on-demand recovery-time bound next to
// the portable snapshot file; with -wal-dir but no -snapshot the
// compaction is the whole request. Ingestion keeps running; edges
// streamed while the checkpoint is being taken land after its prefix.
// 409 when the server runs with neither -snapshot nor -wal-dir.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST /checkpoint")
		return
	}
	if s.snapshotPath == "" && !s.durable {
		writeError(w, http.StatusConflict, "checkpointing is disabled; start reptserve with -snapshot <path> or -wal-dir <dir>")
		return
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()

	var resp checkpointResponse
	var snapErr error
	ok := s.estCall(func() {
		if s.durable {
			if err := s.est.CompactWAL(); err != nil {
				snapErr = fmt.Errorf("wal compaction: %w", err)
				return
			}
		}
		if s.snapshotPath != "" {
			resp, snapErr = writeSnapshotFile(s.est, s.snapshotPath)
		} else {
			resp.Processed = s.est.Processed()
		}
	})
	if !ok {
		writeStopping(w)
		return
	}
	if snapErr != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", snapErr)
		return
	}
	resp.WAL = s.walStats()
	writeJSON(w, http.StatusOK, resp)
}

// writeSnapshotFile checkpoints est into path via temp-file-rename: the
// snapshot becomes visible under its final name only once fully written
// and synced, so path always holds either the previous snapshot or a
// complete new one.
func writeSnapshotFile(est *rept.Concurrent, path string) (checkpointResponse, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must not fall back to os.TempDir(): the temp
		// file has to live in the destination directory for the rename
		// to stay atomic (and possible — rename can't cross filesystems).
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return checkpointResponse{}, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := est.WriteSnapshot(tmp); err != nil {
		return checkpointResponse{}, err
	}
	if err := tmp.Sync(); err != nil {
		return checkpointResponse{}, err
	}
	info, err := tmp.Stat()
	if err != nil {
		return checkpointResponse{}, err
	}
	if err := tmp.Close(); err != nil {
		return checkpointResponse{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return checkpointResponse{}, err
	}
	tmp = nil // the rename consumed it; nothing to clean up
	// Sync the directory too: without it the rename itself may not
	// survive power loss, and the 200 response promises durability.
	// Windows cannot sync directory handles (and its rename semantics
	// differ anyway), so the strict check is POSIX-only.
	if runtime.GOOS != "windows" {
		d, err := os.Open(dir)
		if err != nil {
			return checkpointResponse{}, err
		}
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return checkpointResponse{}, syncErr
		}
	}
	return checkpointResponse{Path: path, Bytes: info.Size(), Processed: est.Processed()}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"processed": s.est.Processed(),
		"shards":    s.est.Shards(),
		"epoch":     s.views.View().Epoch,
		"requests":  s.requests.Load(),
		"uptime":    time.Since(s.start).Round(time.Millisecond).String(),
	})
}
