package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rept"
)

// ingestBatchLen is how many parsed NDJSON edges are handed to the
// estimator per AddAll call; it bounds per-request memory regardless of
// body size.
const ingestBatchLen = 512

// maxLineLen bounds one NDJSON line (1 MiB, matching the stream reader).
const maxLineLen = 1 << 20

// edgeLine is one NDJSON ingest record: {"u": 1, "v": 2}.
type edgeLine struct {
	U *uint32 `json:"u"`
	V *uint32 `json:"v"`
}

// Server exposes a Concurrent REPT estimator over HTTP. All handlers are
// safe for concurrent requests; ingestion from any number of clients maps
// directly onto Concurrent's goroutine-safe Add path.
type Server struct {
	est      *rept.Concurrent
	mux      *http.ServeMux
	start    time.Time
	requests atomic.Uint64

	// snapshotPath is the checkpoint destination (-snapshot flag); empty
	// disables POST /checkpoint. checkpointMu serializes checkpoints so
	// two concurrent requests cannot race on the rename.
	snapshotPath string
	checkpointMu sync.Mutex

	// mu guards estimator access against Stop: handlers hold the read
	// lock around each estimator call, Stop takes the write lock to
	// drain them before the estimator is closed underneath.
	mu      sync.RWMutex
	closing bool
}

// NewServer wraps est in an HTTP API. The caller keeps ownership of est
// (the server never closes it). snapshotPath is where POST /checkpoint
// writes snapshots; empty disables the endpoint.
func NewServer(est *rept.Concurrent, snapshotPath string) *Server {
	s := &Server{est: est, mux: http.NewServeMux(), start: time.Now(), snapshotPath: snapshotPath}
	s.mux.HandleFunc("/edges", s.handleEdges)
	s.mux.HandleFunc("/estimate", s.handleEstimate)
	s.mux.HandleFunc("/local", s.handleLocal)
	s.mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Stop marks the server as shutting down and waits for in-flight
// estimator calls to finish. After Stop, handlers answer 503 instead of
// touching the estimator, so the owner may safely Close it even while
// lingering connections (e.g. after an http.Server.Shutdown timeout) are
// still being served.
func (s *Server) Stop() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
}

// estCall runs f under the read lock unless the server is stopping.
// Handlers must route every estimator access through it.
func (s *Server) estCall(f func()) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closing {
		return false
	}
	f()
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ingestResponse summarizes one POST /edges request.
type ingestResponse struct {
	// Accepted counts non-loop edges ingested from this request body.
	Accepted int `json:"accepted"`
	// SelfLoops counts self-loop lines skipped in this request body.
	SelfLoops int `json:"selfLoops"`
	// Processed is the estimator's total non-loop edge count afterwards
	// (all clients combined).
	Processed uint64 `json:"processed"`
}

// handleEdges ingests NDJSON edges: one {"u":..,"v":..} object per line.
// Blank lines are skipped. On a malformed line the request fails with 400
// after reporting the line number; lines before it are already ingested
// (ingestion is streaming, not transactional).
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST NDJSON edge lines to /edges")
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineLen)

	var resp ingestResponse
	batch := make([]rept.Edge, 0, ingestBatchLen)
	// flush hands the parsed batch to the estimator; false means the
	// server is shutting down and the handler must bail with 503.
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		ok := s.estCall(func() { s.est.AddAll(batch) })
		batch = batch[:0]
		return ok
	}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var el edgeLine
		if err := json.Unmarshal(raw, &el); err != nil {
			flush()
			writeError(w, http.StatusBadRequest, "line %d: %v (accepted %d edges before it)", line, err, resp.Accepted)
			return
		}
		if el.U == nil || el.V == nil {
			flush()
			writeError(w, http.StatusBadRequest, "line %d: need both \"u\" and \"v\" (accepted %d edges before it)", line, resp.Accepted)
			return
		}
		// Self-loops ride along so the estimator's own SelfLoops counter
		// (surfaced by /estimate) stays consistent; AddAll skips them.
		if *el.U == *el.V {
			resp.SelfLoops++
		} else {
			resp.Accepted++
		}
		batch = append(batch, rept.Edge{U: rept.NodeID(*el.U), V: rept.NodeID(*el.V)})
		if len(batch) == cap(batch) && !flush() {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down (accepted %d edges)", resp.Accepted)
			return
		}
	}
	if err := sc.Err(); err != nil {
		flush()
		writeError(w, http.StatusBadRequest, "reading body: %v (accepted %d edges)", err, resp.Accepted)
		return
	}
	if !flush() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down (accepted %d edges)", resp.Accepted)
		return
	}
	resp.Processed = s.est.Processed()
	writeJSON(w, http.StatusOK, resp)
}

// estimateResponse is the GET /estimate payload. StdErr and Variance are
// omitted when the configuration does not track the η counters they need
// (JSON has no NaN).
type estimateResponse struct {
	Global    float64  `json:"global"`
	Variance  *float64 `json:"variance,omitempty"`
	StdErr    *float64 `json:"stderr,omitempty"`
	EtaHat    float64  `json:"etaHat"`
	Processed uint64   `json:"processed"`
	SelfLoops uint64   `json:"selfLoops"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /estimate")
		return
	}
	var snap rept.Estimate
	var resp estimateResponse
	if !s.estCall(func() {
		snap = s.est.Snapshot()
		resp.Processed = s.est.Processed()
		resp.SelfLoops = s.est.SelfLoops()
	}) {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	resp.Global = snap.Global
	resp.EtaHat = snap.EtaHat
	if !math.IsNaN(snap.Variance) {
		v, se := snap.Variance, snap.StdErr()
		resp.Variance, resp.StdErr = &v, &se
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLocal serves GET /local?v=<node>: the local triangle estimate of
// one node. 409 when the server runs without -local.
func (s *Server) handleLocal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET /local?v=<node>")
		return
	}
	if !s.est.Config().TrackLocal {
		writeError(w, http.StatusConflict, "local tracking is disabled; start reptserve with -local")
		return
	}
	q := r.URL.Query().Get("v")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter v")
		return
	}
	v, err := strconv.ParseUint(q, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "v must be a uint32 node id: %v", err)
		return
	}
	var local float64
	if !s.estCall(func() { local = s.est.Local(rept.NodeID(v)) }) {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"v":     v,
		"local": local,
	})
}

// checkpointResponse is the POST /checkpoint payload.
type checkpointResponse struct {
	// Path is the snapshot file written.
	Path string `json:"path"`
	// Bytes is the size of the snapshot file.
	Bytes int64 `json:"bytes"`
	// Processed is the estimator's non-loop edge count when the response
	// was built. The snapshot itself is barrier-consistent at its own
	// prefix, which this count can only exceed (by edges that clients
	// streamed while the checkpoint was written).
	Processed uint64 `json:"processed"`
}

// handleCheckpoint serves POST /checkpoint: a barrier-consistent snapshot
// of the estimator, written atomically (temp file in the destination
// directory, fsync, rename) so a crash mid-checkpoint can never clobber
// the previous snapshot. Ingestion keeps running; edges streamed while
// the checkpoint is being taken land after its prefix. 409 when the
// server runs without -snapshot.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST /checkpoint")
		return
	}
	if s.snapshotPath == "" {
		writeError(w, http.StatusConflict, "checkpointing is disabled; start reptserve with -snapshot <path>")
		return
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()

	var resp checkpointResponse
	var snapErr error
	if !s.estCall(func() { resp, snapErr = writeSnapshotFile(s.est, s.snapshotPath) }) {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if snapErr != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", snapErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeSnapshotFile checkpoints est into path via temp-file-rename: the
// snapshot becomes visible under its final name only once fully written
// and synced, so path always holds either the previous snapshot or a
// complete new one.
func writeSnapshotFile(est *rept.Concurrent, path string) (checkpointResponse, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must not fall back to os.TempDir(): the temp
		// file has to live in the destination directory for the rename
		// to stay atomic (and possible — rename can't cross filesystems).
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return checkpointResponse{}, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := est.WriteSnapshot(tmp); err != nil {
		return checkpointResponse{}, err
	}
	if err := tmp.Sync(); err != nil {
		return checkpointResponse{}, err
	}
	info, err := tmp.Stat()
	if err != nil {
		return checkpointResponse{}, err
	}
	if err := tmp.Close(); err != nil {
		return checkpointResponse{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return checkpointResponse{}, err
	}
	tmp = nil // the rename consumed it; nothing to clean up
	// Sync the directory too: without it the rename itself may not
	// survive power loss, and the 200 response promises durability.
	// Windows cannot sync directory handles (and its rename semantics
	// differ anyway), so the strict check is POSIX-only.
	if runtime.GOOS != "windows" {
		d, err := os.Open(dir)
		if err != nil {
			return checkpointResponse{}, err
		}
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return checkpointResponse{}, syncErr
		}
	}
	return checkpointResponse{Path: path, Bytes: info.Size(), Processed: est.Processed()}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"processed": s.est.Processed(),
		"shards":    s.est.Shards(),
		"requests":  s.requests.Load(),
		"uptime":    time.Since(s.start).Round(time.Millisecond).String(),
	})
}
