package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rept"
	"rept/internal/exper"
	"rept/internal/gen"
)

// crashBinary builds the real reptserve binary once per test run; the
// crash tests exercise the actual process (flags, recovery banner,
// SIGKILL) rather than an in-process handler.
var crashBinary struct {
	once sync.Once
	path string
	err  error
}

func buildReptserve(t *testing.T) string {
	t.Helper()
	crashBinary.once.Do(func() {
		dir, err := os.MkdirTemp("", "reptserve-crash-*")
		if err != nil {
			crashBinary.err = err
			return
		}
		bin := filepath.Join(dir, "reptserve")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			crashBinary.err = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		crashBinary.path = bin
	})
	if crashBinary.err != nil {
		t.Fatal(crashBinary.err)
	}
	return crashBinary.path
}

// crashServer is one spawned reptserve process.
type crashServer struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	errsMu sync.Mutex
	errs   bytes.Buffer
}

// stderrText snapshots the captured stderr (the capture goroutine may
// still be draining the pipe).
func (cs *crashServer) stderrText() string {
	cs.errsMu.Lock()
	defer cs.errsMu.Unlock()
	return cs.errs.String()
}

// startCrashServer spawns reptserve on a kernel-chosen port and waits
// for the "listening on" banner to learn the address.
func startCrashServer(t *testing.T, bin string, args ...string) *crashServer {
	t.Helper()
	cs := &crashServer{}
	cs.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cs.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			cs.errsMu.Lock()
			cs.errs.WriteString(line + "\n")
			cs.errsMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := line[i+len("listening on "):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrC <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrC:
		cs.base = "http://" + addr
	case <-time.After(10 * time.Second):
		cs.cmd.Process.Kill()
		cs.cmd.Wait()
		t.Fatalf("reptserve did not announce its address; stderr:\n%s", cs.stderrText())
	}
	return cs
}

// kill SIGKILLs the process and reaps it.
func (cs *crashServer) kill() {
	cs.cmd.Process.Kill()
	cs.cmd.Wait()
}

// shutdown SIGTERMs the process and waits for a clean exit.
func (cs *crashServer) shutdown(t *testing.T) {
	t.Helper()
	cs.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cs.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reptserve exited uncleanly: %v\nstderr:\n%s", err, cs.stderrText())
		}
	case <-time.After(15 * time.Second):
		cs.cmd.Process.Kill()
		<-done
		t.Fatalf("reptserve did not exit on SIGTERM; stderr:\n%s", cs.stderrText())
	}
}

// crashStream builds the deterministic, loop-free, well-formed churn
// stream every crash-kill round uses.
func crashStream(seed uint64) []rept.Update {
	base := gen.Shuffle(gen.HolmeKim(600, 5, 0.4, 31), seed)
	return exper.DynStream(base, exper.DynOptions{Pattern: exper.Churn, DeleteFrac: 0.3, Seed: seed})
}

// updatesNDJSON renders a batch of signed events as /edges lines.
func updatesNDJSON(ups []rept.Update) string {
	var b strings.Builder
	for _, up := range ups {
		if up.Del {
			fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d,\"op\":\"del\"}\n", up.U, up.V)
		} else {
			fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d}\n", up.U, up.V)
		}
	}
	return b.String()
}

// TestCrashKillRecovery is the durability acceptance test: it streams a
// dynamic workload into a real reptserve process running a write-ahead
// log in per-batch sync mode, SIGKILLs it mid-ingest at a seeded point
// (with compaction enabled, so the kill can land mid-compaction too),
// restarts it on the same log directory, and asserts that
//
//   - every event acknowledged over HTTP before the kill survived, and
//   - the recovered estimator state is bit-for-bit the state of a fresh
//     reference estimator fed exactly the recovered prefix.
func TestCrashKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := buildReptserve(t)
	for _, seed := range []uint64{3, 11, 27} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCrashKillRound(t, bin, seed)
		})
	}
}

func runCrashKillRound(t *testing.T, bin string, seed uint64) {
	walDir := filepath.Join(t.TempDir(), "wal")
	snapPath := filepath.Join(t.TempDir(), "post.snap")
	args := []string{
		"-m", "3", "-c", "9", "-shards", "3", "-seed", "7",
		"-local", "-dynamic",
		"-wal-dir", walDir, "-wal-sync", "batch",
		"-wal-segment-bytes", "8192", "-wal-compact-every", "1500",
		"-snapshot", snapPath,
	}
	cs := startCrashServer(t, bin, args...)
	defer cs.kill() // no-op if already dead

	ups := crashStream(seed)
	const reqLen = 120
	// The kill fires concurrently after killAt acknowledged requests, so
	// it lands while a later request is mid-flight. Derive killAt from
	// the seed to vary the crash point across rounds.
	killAt := int(10 + seed%17)
	killed := make(chan struct{})
	var acked uint64
	sent := 0
	reqs := 0
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < len(ups); i += reqLen {
		end := i + reqLen
		if end > len(ups) {
			end = len(ups)
		}
		resp, err := client.Post(cs.base+"/edges", "application/x-ndjson",
			strings.NewReader(updatesNDJSON(ups[i:end])))
		if err != nil {
			// The kill raced this request; its events carry no receipt.
			break
		}
		var ir ingestResponse
		decErr := json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			break
		}
		if !ir.Durable {
			t.Fatal("ingest response does not report durable=true under -wal-dir")
		}
		acked += uint64(ir.Accepted)
		sent = end
		reqs++
		if reqs == killAt {
			go func() { cs.kill(); close(killed) }()
		}
	}
	if reqs < killAt {
		t.Fatalf("stream exhausted after %d requests before the seeded kill point %d", reqs, killAt)
	}
	<-killed

	// Restart on the same log directory and let recovery run.
	cs2 := startCrashServer(t, bin, args...)
	defer cs2.kill()
	var stats struct {
		Processed uint64        `json:"processed"`
		WAL       *walStatsJSON `json:"wal"`
	}
	resp, err := client.Get(cs2.base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	k := stats.Processed
	if k < acked {
		t.Fatalf("recovered %d events but %d were acknowledged before the kill: ACKed data lost", k, acked)
	}
	if k > uint64(sent)+reqLen {
		t.Fatalf("recovered %d events, more than the %d ever sent", k, sent+reqLen)
	}
	if stats.WAL == nil {
		t.Fatal("/stats has no wal block under -wal-dir")
	}
	if stats.WAL.DurablePos != k {
		t.Fatalf("recovered wal durable position %d != processed %d", stats.WAL.DurablePos, k)
	}

	// Bit-for-bit: checkpoint the recovered server and compare against a
	// reference estimator hand-fed exactly the recovered prefix.
	if _, err := client.Post(cs2.base+"/checkpoint", "", nil); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 3, C: 9, Shards: 3, Seed: 7,
		TrackLocal: true, FullyDynamic: true, TrackDegrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.ApplyAll(ups[:k])
	var want bytes.Buffer
	if err := ref.WriteSnapshot(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("recovered state at position %d differs bit-for-bit from the hand-replayed reference", k)
	}
	cs2.shutdown(t)
}

// TestCrashKillRestartChain kills the server twice in a row (the second
// crash interrupts a server that itself recovered from a crash) and
// verifies recovery still lands on a consistent prefix — segment chains
// written across restarts must splice.
func TestCrashKillRestartChain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := buildReptserve(t)
	walDir := filepath.Join(t.TempDir(), "wal")
	args := []string{
		"-m", "2", "-c", "4", "-seed", "5", "-dynamic",
		"-wal-dir", walDir, "-wal-sync", "batch", "-wal-segment-bytes", "4096",
	}
	ups := crashStream(91)
	client := &http.Client{Timeout: 10 * time.Second}
	const reqLen = 150
	var acked uint64
	pos := 0
	for round := 0; round < 2; round++ {
		cs := startCrashServer(t, bin, args...)
		for r := 0; r < 6 && pos < len(ups); r++ {
			end := pos + reqLen
			if end > len(ups) {
				end = len(ups)
			}
			resp, err := client.Post(cs.base+"/edges", "application/x-ndjson",
				strings.NewReader(updatesNDJSON(ups[pos:end])))
			if err != nil {
				break
			}
			var ir ingestResponse
			decErr := json.NewDecoder(resp.Body).Decode(&ir)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decErr != nil {
				break
			}
			acked += uint64(ir.Accepted)
			pos = end
		}
		cs.kill()
	}
	cs := startCrashServer(t, bin, args...)
	defer cs.kill()
	var stats struct {
		Processed uint64 `json:"processed"`
	}
	resp, err := client.Get(cs.base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Processed != acked {
		t.Fatalf("recovered %d events after two crashes, %d were acknowledged", stats.Processed, acked)
	}
	cs.shutdown(t)
}
