package main

// Zero-copy scanner for the fixed NDJSON ingest shape
// {"u": <uint32>, "v": <uint32>, "op": "add"|"del"|"delete"} (fields in
// any order, optional whitespace). The hot ingest loop burns one of
// these per stream event, and encoding/json pays reflection plus
// per-token allocation for a shape we know exactly; this scanner walks
// the line's bytes once and allocates nothing. Anything it is not
// certain about — escapes, duplicate or unknown fields, non-integer
// numbers, absent u/v — falls back to encoding/json so error text and
// edge-case semantics stay byte-for-byte what they always were.

// op codes reported by parseEdgeLine.
const (
	opNone = iota // no "op" field: keep the request method's default
	opAdd
	opDel
)

// parseEdgeLine parses one NDJSON edge line without allocating. ok is
// false when the line does not match the fast shape (malformed or merely
// unusual); the caller must then re-parse with encoding/json.
//
//rept:hotpath
func parseEdgeLine(b []byte) (u, v uint32, op int, ok bool) {
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return 0, 0, 0, false
	}
	i = skipSpace(b, i+1)
	var haveU, haveV bool
fields:
	for {
		// Field name (an empty object or trailing comma lands here with
		// '}' or worse and falls back).
		if i >= len(b) || b[i] != '"' || i+2 >= len(b) {
			return 0, 0, 0, false
		}
		var name byte
		switch {
		case b[i+1] == 'u' && b[i+2] == '"':
			name = 'u'
		case b[i+1] == 'v' && b[i+2] == '"':
			name = 'v'
		case b[i+1] == 'o' && i+3 < len(b) && b[i+2] == 'p' && b[i+3] == '"':
			name = 'o'
		default:
			return 0, 0, 0, false
		}
		i += 3
		if name == 'o' {
			i++
		}
		i = skipSpace(b, i)
		if i >= len(b) || b[i] != ':' {
			return 0, 0, 0, false
		}
		i = skipSpace(b, i+1)
		switch name {
		case 'u', 'v':
			n, j, good := parseUint32(b, i)
			if !good {
				return 0, 0, 0, false
			}
			if name == 'u' {
				if haveU {
					return 0, 0, 0, false // duplicate field: let json decide
				}
				haveU, u = true, n
			} else {
				if haveV {
					return 0, 0, 0, false
				}
				haveV, v = true, n
			}
			i = j
		case 'o':
			j, good := parseOpValue(b, i, &op)
			if !good {
				return 0, 0, 0, false
			}
			i = j
		}
		i = skipSpace(b, i)
		if i >= len(b) {
			return 0, 0, 0, false
		}
		switch b[i] {
		case ',':
			i = skipSpace(b, i+1)
		case '}':
			i++
			break fields
		default:
			return 0, 0, 0, false
		}
	}
	if skipSpace(b, i) != len(b) || !haveU || !haveV {
		return 0, 0, 0, false
	}
	return u, v, op, true
}

// skipSpace advances past JSON whitespace.
//
//rept:hotpath
func skipSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

// parseUint32 reads a plain decimal integer (no sign, fraction, or
// exponent) that fits uint32, returning the position after it.
//
//rept:hotpath
func parseUint32(b []byte, i int) (uint32, int, bool) {
	start := i
	var n uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		n = n*10 + uint64(b[i]-'0')
		if n > 1<<32-1 {
			return 0, 0, false
		}
		i++
	}
	if i == start {
		return 0, 0, false
	}
	if i-start > 1 && b[start] == '0' {
		return 0, 0, false // leading zeros are not valid JSON numbers
	}
	return uint32(n), i, true
}

// parseOpValue reads the quoted op string, accepting exactly the values
// the ingest endpoint accepts; op is overwritten when it parses.
//
//rept:hotpath
func parseOpValue(b []byte, i int, op *int) (int, bool) {
	if *op != opNone {
		return 0, false // duplicate "op" field
	}
	if i >= len(b) || b[i] != '"' {
		return 0, false
	}
	i++
	start := i
	for i < len(b) && b[i] != '"' {
		if b[i] == '\\' {
			return 0, false
		}
		i++
	}
	if i >= len(b) {
		return 0, false
	}
	switch string(b[start:i]) { // compared against constants: no allocation
	case "add":
		*op = opAdd
	case "del", "delete":
		*op = opDel
	case "":
		*op = opNone
		// An explicit empty op keeps the method default, matching the
		// encoding/json path's switch on "".
	default:
		return 0, false // unknown op: json fallback produces the 400
	}
	return i + 1, true
}
