// Command benchdiff compares two benchmark recordings produced by
// `go test -json -bench ...` and fails when a tracked benchmark's
// ns-per-op — or, when the recordings carry -benchmem columns, its
// bytes-per-op — regressed beyond a threshold. It is the CI guardrail that
// keeps the per-event ingest trajectory from silently rotting: the bench
// step records BENCH_<sha>.json into bench/ on every main push, and the
// gate compares each fresh run against the last committed recording.
//
// Usage:
//
//	benchdiff -old bench/BENCH_abc.json -new bench/BENCH_def.json \
//	    [-threshold 0.25] [-bench Name1,Name2,...]
//	benchdiff -latest bench/LATEST -new bench/BENCH_def.json
//	benchdiff -new bench/BENCH_def.json \
//	    -pair BenchmarkREPTPerEdgeInstrumented=BenchmarkConcurrentPerEdge \
//	    [-pair-threshold 0.05]
//
// -pair gates WITHIN one recording instead of across two: each A=B entry
// fails when A's ns/op exceeds B's by more than -pair-threshold. Both
// sides come from the same run on the same hardware, so the comparison
// is immune to the cross-hardware skips below — it is how CI bounds the
// overhead of always-on instrumentation (the instrumented ingest
// benchmark must stay within 5% of its uninstrumented twin). An entry
// may carry an explicit ratio cap as A=B@maxRatio — e.g.
// BenchmarkBatchIngestPerEvent=BenchmarkApplyAllPerEvent@0.5 fails
// unless A is at least 2× faster than B — which overrides
// -pair-threshold for that entry. -pair composes with the baseline gate
// or runs alone with just -new.
//
// When the recordings carry B/op columns (run the benchmarks with
// -benchmem), both gate kinds also bound bytes-per-op: the baseline gate
// at the same relative -threshold and the pair gate at the same ratio
// cap, each with a 16-byte absolute slack so 0 B/op baselines stay
// enforceable without dividing by zero. A baseline recorded before
// -benchmem has no byte column; byte gating phases in with a note on its
// first -benchmem run, exactly like a benchmark with no baseline.
//
// With -latest, the baseline is resolved through a pointer file holding
// the committed baseline's file name (relative to the pointer's
// directory). A missing pointer file is a clean skip — the trajectory
// has to start somewhere — but a pointer that names a missing file is a
// hard error: the trajectory record is broken and silently skipping the
// gate would let regressions through unnoticed.
//
// A benchmark listed in -bench but missing from the old file is skipped
// with a note (the trajectory starts somewhere); missing from the new
// file is an error (the suite lost a tracked benchmark). Likewise, ANY
// benchmark recorded in the baseline but absent from the fresh run is a
// hard error — a renamed benchmark would otherwise drop out of the gate
// silently, with the old name skipped as "no baseline" forever. When
// the same benchmark appears several times in one file (the full
// -benchtime=1x sweep plus a dedicated longer run), the run with the
// most iterations wins — it is the statistically meaningful one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultBenchmarks are the per-event ingest datapoints gated by default:
// the insert-only, fully-dynamic, and durable (write-ahead-logged)
// per-event costs. A benchmark missing from the old baseline is skipped
// with a note, so newly added datapoints phase in on their first run.
const defaultBenchmarks = "BenchmarkREPTPerEdge,BenchmarkFullyDynamicChurnPerEvent,BenchmarkREPTPerEdgeWAL,BenchmarkBatchIngestPerEvent"

// result is one parsed benchmark line.
type result struct {
	iters int64
	nsOp  float64
	// bOp is the -benchmem bytes-per-operation column; hasB records
	// whether the line carried one (older recordings predate -benchmem,
	// and their byte gates phase in rather than fail).
	bOp  float64
	hasB bool
}

// recording is one parsed BENCH file: best result per benchmark plus the
// CPU model the run happened on.
type recording struct {
	results map[string]result
	cpu     string
}

// testEvent is the go test -json envelope (only the fields we need).
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches "BenchmarkName-8   12345   678.9 ns/op   12 B/op ..."
// (the B/op column appears only under -benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark[^\s-]+)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?`)

// bytesSlack is the absolute bytes-per-event allowance on top of every
// relative B/op gate. Per-event allocation costs are near-integer and
// often exactly 0, where a pure ratio is undefined (0/0) and a single
// stray cache-line-sized allocation would be an infinite regression; the
// slack turns "must not grow by more than X%" into "…and never minds
// noise smaller than one allocator size class".
const bytesSlack = 16

// parseFile extracts the best (highest-iteration) result per benchmark
// name from a go test -json stream, plus the "cpu:" banner. One
// benchmark's report is split across several output events (the name and
// the numbers arrive separately), so the stream is first reassembled
// into plain text per package and then scanned line-wise. Plain
// benchmark text (no JSON envelope) is accepted too, so locally produced
// files work either way.
func parseFile(path string) (recording, error) {
	rec := recording{results: make(map[string]result)}
	f, err := os.Open(path)
	if err != nil {
		return rec, err
	}
	defer f.Close()
	texts := make(map[string]*strings.Builder) // package → reassembled output
	text := func(pkg string) *strings.Builder {
		b := texts[pkg]
		if b == nil {
			b = &strings.Builder{}
			texts[pkg] = b
		}
		return b
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					text(ev.Package).WriteString(ev.Output)
				}
				continue
			}
			// Not a test event: fall through as plain text.
		}
		text("").WriteString(line + "\n")
	}
	if err := sc.Err(); err != nil {
		return rec, err
	}
	pkgs := make([]string, 0, len(texts))
	for pkg := range texts {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs) // deterministic cpu-banner pick across buckets
	for _, pkg := range pkgs {
		for _, line := range strings.Split(texts[pkg].String(), "\n") {
			line = strings.TrimSpace(line)
			if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
				if rec.cpu == "" {
					rec.cpu = strings.TrimSpace(cpu)
				}
				continue
			}
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			iters, err1 := strconv.ParseInt(m[2], 10, 64)
			nsOp, err2 := strconv.ParseFloat(m[3], 64)
			if err1 != nil || err2 != nil {
				continue
			}
			r := result{iters: iters, nsOp: nsOp}
			if m[4] != "" {
				if bOp, err := strconv.ParseFloat(m[4], 64); err == nil {
					r.bOp, r.hasB = bOp, true
				}
			}
			if prev, ok := rec.results[m[1]]; !ok || iters > prev.iters {
				rec.results[m[1]] = r
			}
		}
	}
	return rec, nil
}

// resolveLatest turns a LATEST pointer file into the baseline path it
// names. Returns "" (skip, no error) when the pointer itself does not
// exist yet; returns an error when the pointer exists but is empty or
// names a file that is gone — a broken trajectory record must fail the
// gate loudly, not skip it.
func resolveLatest(pointer string) (string, error) {
	raw, err := os.ReadFile(pointer)
	if os.IsNotExist(err) {
		fmt.Printf("no baseline pointer %s yet; the trajectory starts with this run\n", pointer)
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("reading baseline pointer: %w", err)
	}
	name := strings.TrimSpace(string(raw))
	if name == "" {
		return "", fmt.Errorf("baseline pointer %s is empty; re-record the baseline or delete the pointer", pointer)
	}
	target := filepath.Join(filepath.Dir(pointer), name)
	if _, err := os.Stat(target); err != nil {
		return "", fmt.Errorf("baseline pointer %s names %s, which is missing: the bench trajectory record is broken; restore the baseline file or re-point %s", pointer, target, pointer)
	}
	return target, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	oldPath := fs.String("old", "", "baseline BENCH json file")
	latest := fs.String("latest", "", "baseline pointer file (e.g. bench/LATEST) naming the baseline; missing pointer skips, missing target fails")
	newPath := fs.String("new", "", "fresh BENCH json file")
	threshold := fs.Float64("threshold", 0.25, "fail when new ns/op exceeds old by more than this fraction")
	benches := fs.String("bench", defaultBenchmarks, "comma-separated benchmark names to gate")
	pairs := fs.String("pair", "", "comma-separated A=B within-run gates on -new: fail when A's ns/op exceeds B's by more than -pair-threshold")
	pairThreshold := fs.Float64("pair-threshold", 0.05, "fail a -pair when A exceeds B by more than this fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath != "" && *latest != "" {
		return fmt.Errorf("-old and -latest are mutually exclusive")
	}
	if *newPath == "" {
		return fmt.Errorf("-new is required")
	}
	newRec, err := parseFile(*newPath)
	if err != nil {
		return fmt.Errorf("reading fresh run: %w", err)
	}
	// Within-run pair gates run first: they need only -new and must not be
	// skipped by the baseline-resolution early returns below.
	if err := checkPairs(newRec.results, *pairs, *pairThreshold, *newPath); err != nil {
		return err
	}
	if *oldPath == "" && *latest == "" {
		if *pairs != "" {
			return nil // pair-only invocation
		}
		return fmt.Errorf("both -old (or -latest) and -new are required")
	}
	if *latest != "" {
		target, err := resolveLatest(*latest)
		if err != nil {
			return err
		}
		if target == "" {
			return nil
		}
		if filepath.Clean(target) == filepath.Clean(*newPath) {
			fmt.Println("fresh run is the committed baseline; nothing to compare")
			return nil
		}
		*oldPath = target
	}
	oldRec, err := parseFile(*oldPath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	oldRes, newRes := oldRec.results, newRec.results
	if oldRec.cpu != newRec.cpu {
		// ns/op across different hardware is noise, not signal: the gate
		// compares like for like only. The trajectory keeps recording, and
		// the next same-hardware baseline re-arms the comparison.
		fmt.Printf("baseline cpu %q != fresh cpu %q; skipping cross-hardware comparison\n", oldRec.cpu, newRec.cpu)
		return nil
	}
	var failures []string
	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		nw, ok := newRes[name]
		if !ok {
			return fmt.Errorf("benchmark %s missing from %s (tracked benchmark dropped?)", name, *newPath)
		}
		old, ok := oldRes[name]
		if !ok {
			fmt.Printf("%-40s %12.1f ns/op (no baseline; trajectory starts here)\n", name, nw.nsOp)
			continue
		}
		ratio := nw.nsOp / old.nsOp
		fmt.Printf("%-40s %12.1f -> %9.1f ns/op (%+.1f%%)\n", name, old.nsOp, nw.nsOp, (ratio-1)*100)
		if ratio > 1+*threshold {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (threshold %.0f%%)", name, (ratio-1)*100, *threshold*100))
		}
		// Bytes-per-event rides the same gate once both sides record it:
		// the relative threshold plus an absolute one-size-class slack, so
		// a 0 B/op baseline stays enforceable without a division by zero.
		switch {
		case !nw.hasB:
			// Fresh run without -benchmem: nothing to gate.
		case !old.hasB:
			fmt.Printf("%-40s %25.0f B/op (no byte baseline; trajectory starts here)\n", name, nw.bOp)
		default:
			fmt.Printf("%-40s %12.0f -> %9.0f B/op\n", name, old.bOp, nw.bOp)
			if nw.bOp > old.bOp*(1+*threshold)+bytesSlack {
				failures = append(failures, fmt.Sprintf("%s bytes/event regressed %.0f -> %.0f B/op (threshold %.0f%% + %dB)", name, old.bOp, nw.bOp, *threshold*100, bytesSlack))
			}
		}
	}
	// Every benchmark the baseline recorded must appear in the fresh run:
	// a silent disappearance is how a renamed benchmark drops out of the
	// gate (the new name starts a fresh trajectory, the old name is never
	// compared again).
	var missing []string
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("baseline benchmark(s) missing from %s: %s — if renamed, gate the new name AND re-record the baseline (the rename otherwise silently drops the trajectory); if deleted on purpose, re-record the baseline without it", *newPath, strings.Join(missing, ", "))
	}
	if len(failures) > 0 {
		return fmt.Errorf("per-event ingest regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// checkPairs evaluates the -pair A=B[@maxRatio] gates against one
// recording: both sides must be present (a dropped benchmark fails
// loudly, like a dropped -bench entry), and A may not exceed B by more
// than threshold — or, with an explicit @maxRatio suffix, A/B may not
// exceed that absolute ratio (e.g. @0.5 demands A at least 2× faster).
func checkPairs(res map[string]result, pairs string, threshold float64, path string) error {
	if pairs == "" {
		return nil
	}
	var failures []string
	for _, p := range strings.Split(pairs, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		a, b, ok := strings.Cut(p, "=")
		a, b = strings.TrimSpace(a), strings.TrimSpace(b)
		if !ok || a == "" || b == "" {
			return fmt.Errorf("-pair entry %q is not of the form A=B[@maxRatio]", p)
		}
		maxRatio := 1 + threshold
		if b2, capStr, found := strings.Cut(b, "@"); found {
			b = strings.TrimSpace(b2)
			r, err := strconv.ParseFloat(strings.TrimSpace(capStr), 64)
			if err != nil || r <= 0 || b == "" {
				return fmt.Errorf("-pair entry %q: ratio cap %q is not a positive number", p, capStr)
			}
			maxRatio = r
		}
		ra, okA := res[a]
		rb, okB := res[b]
		if !okA || !okB {
			return fmt.Errorf("-pair %s: %s present=%v, %s present=%v in %s (tracked benchmark dropped?)", p, a, okA, b, okB, path)
		}
		ratio := ra.nsOp / rb.nsOp
		fmt.Printf("%-40s %12.1f ns/op vs %s %.1f ns/op (ratio %.2f, max %.2f)\n", a, ra.nsOp, b, rb.nsOp, ratio, maxRatio)
		if ratio > maxRatio {
			failures = append(failures, fmt.Sprintf("%s is %.2f× %s, exceeding the %.2f× cap", a, ratio, b, maxRatio))
		}
		// The byte columns pair-gate under the same cap (plus the absolute
		// slack) when both sides recorded them — for the accounted-vs-
		// unaccounted ingest pair both sides must be 0 B/op in steady
		// state, and this is the gate that notices when one stops being so.
		if ra.hasB && rb.hasB && ra.bOp > rb.bOp*maxRatio+bytesSlack {
			failures = append(failures, fmt.Sprintf("%s allocates %.0f B/op vs %s at %.0f B/op (cap %.2f× + %dB)", a, ra.bOp, b, rb.bOp, maxRatio, bytesSlack))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("within-run pair regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
