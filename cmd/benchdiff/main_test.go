package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// jsonBench wraps benchmark output lines in the go test -json envelope.
func jsonBench(lines ...string) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"rept"}` + "\n")
	for _, l := range lines {
		b.WriteString(`{"Action":"output","Package":"rept","Output":"` + l + `\n"}` + "\n")
	}
	return b.String()
}

func TestParseFilePicksHighestIterationRun(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "b.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1 \\t 99999 ns/op",       // the 1x sweep: noise
		"BenchmarkREPTPerEdge-8 \\t 2000000 \\t 700.5 ns/op", // the real run
		"BenchmarkOther-8 \\t 10 \\t 5 ns/op",
	))
	rec, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rec.results["BenchmarkREPTPerEdge"]
	if !ok || r.nsOp != 700.5 || r.iters != 2000000 {
		t.Fatalf("parsed %+v, want the 2M-iteration run at 700.5 ns/op", r)
	}
}

// TestParseFileSplitOutputEvents: go test -json splits one benchmark
// report across several output events (the name, then the numbers);
// parsing must reassemble them.
func TestParseFileSplitOutputEvents(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "b.json",
		`{"Action":"output","Package":"rept","Output":"cpu: Fake CPU\n"}`+"\n"+
			`{"Action":"output","Package":"rept","Output":"BenchmarkREPTPerEdge\n"}`+"\n"+
			`{"Action":"output","Package":"rept","Output":"BenchmarkREPTPerEdge               \t"}`+"\n"+
			`{"Action":"output","Package":"rept","Output":" 3691238\t       692.7 ns/op\n"}`+"\n"+
			`{"Action":"pass","Package":"rept"}`+"\n")
	rec, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rec.results["BenchmarkREPTPerEdge"]
	if !ok || r.nsOp != 692.7 || r.iters != 3691238 {
		t.Fatalf("parsed %+v, want 3691238 iterations at 692.7 ns/op", r)
	}
	if rec.cpu != "Fake CPU" {
		t.Fatalf("cpu = %q", rec.cpu)
	}
}

func TestParseFilePlainText(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "b.txt",
		"goos: linux\ncpu: Intel(R) Xeon(R) Processor @ 2.10GHz\nBenchmarkFullyDynamicChurnPerEvent \t 5000000 \t 450.0 ns/op \t 0 B/op\nPASS\n")
	rec, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r := rec.results["BenchmarkFullyDynamicChurnPerEvent"]; r.nsOp != 450.0 {
		t.Fatalf("parsed %+v, want 450.0 ns/op", r)
	}
	if rec.cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", rec.cpu)
	}
}

// TestRunSkipsCrossHardware: a regression measured on different hardware
// is noise; the gate must pass with a note instead of failing.
func TestRunSkipsCrossHardware(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.json", jsonBench(
		"cpu: CPU Model A",
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 100 ns/op",
	))
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"cpu: CPU Model B",
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 9999 ns/op",
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 9999 ns/op",
	))
	if err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"}); err != nil {
		t.Errorf("cross-hardware comparison failed instead of skipping: %v", err)
	}
}

func TestRunPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 800 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 180 ns/op",
	))
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1200 ns/op", // +20% < 25%
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 500 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1600 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 190 ns/op",
	))
	if err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"}); err != nil {
		t.Errorf("run failed within threshold: %v", err)
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 800 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 180 ns/op",
	))
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1300 ns/op", // +30% > 25%
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 800 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 180 ns/op",
	))
	err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkREPTPerEdge regressed") {
		t.Errorf("run = %v, want a regression failure naming BenchmarkREPTPerEdge", err)
	}
}

func TestRunMissingTrackedBenchmark(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
	))
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkOther-8 \\t 1000000 \\t 1000 ns/op",
	))
	if err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"}); err == nil {
		t.Error("run succeeded with a tracked benchmark missing from the fresh file")
	}
	// A benchmark absent from the BASELINE is fine: the trajectory has to
	// start somewhere. (The fresh run is a superset of the baseline, so
	// the completeness scan stays quiet.)
	superset := writeFile(t, dir, "superset.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkOther-8 \\t 1000000 \\t 1000 ns/op",
	))
	if err := run([]string{"-old", old, "-new", superset, "-bench", "BenchmarkREPTPerEdge,BenchmarkOther"}); err != nil {
		t.Errorf("run failed when only the baseline lacks a benchmark: %v", err)
	}
}

// TestRunFailsOnBaselineBenchmarkMissing is the regression test for the
// silent rename drop: a benchmark recorded in the baseline but absent
// from the fresh run historically passed (the per-name loop only checks
// the -bench list), so renaming a benchmark quietly removed it from the
// gate. It must be a hard failure carrying a rename hint.
func TestRunFailsOnBaselineBenchmarkMissing(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkRenamedAway-8 \\t 1000000 \\t 500 ns/op",
	))
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkFreshName-8 \\t 1000000 \\t 480 ns/op",
	))
	err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"})
	if err == nil {
		t.Fatal("run passed with a baseline benchmark missing from the fresh run")
	}
	if !strings.Contains(err.Error(), "BenchmarkRenamedAway") || !strings.Contains(err.Error(), "renamed") {
		t.Errorf("error %q must name the vanished benchmark and hint at a rename", err)
	}
}

// TestRunLatestPointer exercises the -latest pointer modes: no pointer
// yet is a clean skip, a healthy pointer resolves to the baseline, a
// self-pointing baseline skips, and a pointer naming a missing file is
// a hard error — never a silent skip.
func TestRunLatestPointer(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "BENCH_old.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 800 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 180 ns/op",
	))
	fresh := writeFile(t, dir, "BENCH_new.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1300 ns/op", // +30% > 25%
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 800 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 180 ns/op",
	))
	pointer := filepath.Join(dir, "LATEST")

	// Pointer file absent: the trajectory starts here, clean skip.
	if err := run([]string{"-latest", pointer, "-new", fresh}); err != nil {
		t.Errorf("run failed with no pointer file yet: %v", err)
	}

	// Healthy pointer: resolves relative to the pointer's directory and
	// gates for real (the fresh file regressed, so the gate must fail).
	writeFile(t, dir, "LATEST", "BENCH_old.json\n")
	err := run([]string{"-latest", pointer, "-new", fresh})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkREPTPerEdge") {
		t.Errorf("run = %v, want a regression failure via the pointer baseline", err)
	}

	// Pointer naming the fresh file itself: nothing to compare.
	writeFile(t, dir, "LATEST", "BENCH_new.json\n")
	if err := run([]string{"-latest", pointer, "-new", fresh}); err != nil {
		t.Errorf("run failed when the fresh run is the baseline: %v", err)
	}

	// Pointer naming a missing file: hard error, not a skip.
	writeFile(t, dir, "LATEST", "BENCH_gone.json\n")
	err = run([]string{"-latest", pointer, "-new", fresh})
	if err == nil || !strings.Contains(err.Error(), "BENCH_gone.json") {
		t.Errorf("run = %v, want a hard error naming the missing baseline", err)
	}

	// Empty pointer: also a hard error.
	writeFile(t, dir, "LATEST", "\n")
	if err := run([]string{"-latest", pointer, "-new", fresh}); err == nil {
		t.Error("run succeeded with an empty pointer file")
	}

	// -old and -latest together are ambiguous.
	if err := run([]string{"-old", fresh, "-latest", pointer, "-new", fresh}); err == nil {
		t.Error("run accepted both -old and -latest")
	}
}

func TestRunPairWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkConcurrentPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkREPTPerEdgeInstrumented-8 \\t 1000000 \\t 1040 ns/op", // +4% < 5%
	))
	err := run([]string{"-new", fresh,
		"-pair", "BenchmarkREPTPerEdgeInstrumented=BenchmarkConcurrentPerEdge"})
	if err != nil {
		t.Errorf("pair gate failed within threshold: %v", err)
	}
}

func TestRunPairFailsOnOverhead(t *testing.T) {
	dir := t.TempDir()
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkConcurrentPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkREPTPerEdgeInstrumented-8 \\t 1000000 \\t 1080 ns/op", // +8% > 5%
	))
	err := run([]string{"-new", fresh,
		"-pair", "BenchmarkREPTPerEdgeInstrumented=BenchmarkConcurrentPerEdge"})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkREPTPerEdgeInstrumented is 1.08× BenchmarkConcurrentPerEdge") {
		t.Errorf("run = %v, want a pair-overhead failure naming both sides and the ratio", err)
	}
}

// TestRunPairRatioCap: an A=B@maxRatio entry gates on an absolute ratio
// instead of 1+pair-threshold — the batch-vs-per-event speedup gate
// (@0.5 = "batch must be at least 2× faster") rides on this.
func TestRunPairRatioCap(t *testing.T) {
	dir := t.TempDir()
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkApplyAllPerEvent-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 400 ns/op", // 0.40 ≤ 0.5
	))
	if err := run([]string{"-new", fresh,
		"-pair", "BenchmarkBatchIngestPerEvent=BenchmarkApplyAllPerEvent@0.5"}); err != nil {
		t.Errorf("pair gate failed under the explicit ratio cap: %v", err)
	}

	slow := writeFile(t, dir, "slow.json", jsonBench(
		"BenchmarkApplyAllPerEvent-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkBatchIngestPerEvent-8 \\t 1000000 \\t 600 ns/op", // 0.60 > 0.5
	))
	err := run([]string{"-new", slow,
		"-pair", "BenchmarkBatchIngestPerEvent=BenchmarkApplyAllPerEvent@0.5"})
	if err == nil || !strings.Contains(err.Error(), "0.50× cap") {
		t.Errorf("run = %v, want a failure against the 0.50× cap", err)
	}

	// A malformed cap must be a configuration error, not a silent pass.
	err = run([]string{"-new", fresh,
		"-pair", "BenchmarkBatchIngestPerEvent=BenchmarkApplyAllPerEvent@fast"})
	if err == nil || !strings.Contains(err.Error(), "not a positive number") {
		t.Errorf("run = %v, want a malformed-cap error", err)
	}
}

func TestRunPairMissingSide(t *testing.T) {
	dir := t.TempDir()
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkConcurrentPerEdge-8 \\t 1000000 \\t 1000 ns/op",
	))
	err := run([]string{"-new", fresh,
		"-pair", "BenchmarkREPTPerEdgeInstrumented=BenchmarkConcurrentPerEdge"})
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Errorf("run = %v, want a missing-benchmark failure", err)
	}
}

// TestRunPairComposesWithBaseline: one invocation can run both gates;
// the pair verdict must not be masked by a clean baseline comparison.
func TestRunPairComposesWithBaseline(t *testing.T) {
	dir := t.TempDir()
	old := writeFile(t, dir, "old.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 800 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
	))
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 800 ns/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
		"BenchmarkConcurrentPerEdge-8 \\t 1000000 \\t 1000 ns/op",
		"BenchmarkREPTPerEdgeInstrumented-8 \\t 1000000 \\t 1200 ns/op", // +20% > 5%
	))
	err := run([]string{"-old", old, "-new", fresh,
		"-pair", "BenchmarkREPTPerEdgeInstrumented=BenchmarkConcurrentPerEdge"})
	if err == nil || !strings.Contains(err.Error(), "pair regression") {
		t.Errorf("run = %v, want the pair failure to surface alongside a clean baseline", err)
	}
}

// TestParseFileBytesColumn: the -benchmem B/op column is parsed when
// present and its absence is recorded, so byte gating can phase in.
func TestParseFileBytesColumn(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "b.json", jsonBench(
		"BenchmarkREPTPerEdge-8 \\t 1000000 \\t 700.5 ns/op \\t 12 B/op \\t 1 allocs/op",
		"BenchmarkFullyDynamicChurnPerEvent-8 \\t 1000000 \\t 450 ns/op \\t 0 B/op \\t 0 allocs/op",
		"BenchmarkREPTPerEdgeWAL-8 \\t 1000000 \\t 1500 ns/op",
	))
	rec, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r := rec.results["BenchmarkREPTPerEdge"]; !r.hasB || r.bOp != 12 {
		t.Errorf("BenchmarkREPTPerEdge = %+v, want 12 B/op recorded", r)
	}
	if r := rec.results["BenchmarkFullyDynamicChurnPerEvent"]; !r.hasB || r.bOp != 0 {
		t.Errorf("zero-alloc benchmark = %+v, want an explicit 0 B/op", r)
	}
	if r := rec.results["BenchmarkREPTPerEdgeWAL"]; r.hasB {
		t.Errorf("no-benchmem line = %+v, want hasB=false", r)
	}
}

// baselinePair builds matched old/new recordings for the byte-gate
// baseline tests: identical ns/op everywhere (timing never trips), byte
// columns as given (empty string = no -benchmem column).
func baselinePair(t *testing.T, dir, oldB, newB string) (string, string) {
	t.Helper()
	line := func(b string) string {
		s := " \\t 1000000 \\t 1000 ns/op"
		if b != "" {
			s += " \\t " + b + " B/op"
		}
		return s
	}
	old := writeFile(t, dir, "old.json", jsonBench(
		"BenchmarkREPTPerEdge-8"+line(oldB),
	))
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkREPTPerEdge-8"+line(newB),
	))
	return old, fresh
}

// TestRunBytesBaselineGate: B/op regressions beyond threshold+slack fail
// the baseline gate even when ns/op is unchanged; small absolute byte
// growth inside the slack passes (per-event byte costs are near-integer
// noise around allocator size classes).
func TestRunBytesBaselineGate(t *testing.T) {
	dir := t.TempDir()

	// 0 -> 12 B/op: inside the 16-byte slack, passes.
	old, fresh := baselinePair(t, dir, "0", "12")
	if err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"}); err != nil {
		t.Errorf("run = %v, want growth inside the byte slack to pass", err)
	}

	// 0 -> 64 B/op: a real new allocation on a zero baseline, fails.
	dir2 := t.TempDir()
	old, fresh = baselinePair(t, dir2, "0", "64")
	err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"})
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Errorf("run = %v, want a bytes/event regression failure", err)
	}

	// 1000 -> 1100 B/op: +10% < 25% threshold, passes.
	dir3 := t.TempDir()
	old, fresh = baselinePair(t, dir3, "1000", "1100")
	if err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"}); err != nil {
		t.Errorf("run = %v, want +10%% bytes within the 25%% threshold to pass", err)
	}

	// 1000 -> 1500 B/op: +50% > 25%, fails.
	dir4 := t.TempDir()
	old, fresh = baselinePair(t, dir4, "1000", "1500")
	err = run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"})
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Errorf("run = %v, want a bytes/event regression failure at +50%%", err)
	}
}

// TestRunBytesPhaseIn: a baseline recorded before -benchmem has no byte
// column; the first -benchmem run must start the byte trajectory with a
// note instead of failing — and the reverse (fresh run without
// -benchmem) must not gate bytes at all.
func TestRunBytesPhaseIn(t *testing.T) {
	dir := t.TempDir()
	old, fresh := baselinePair(t, dir, "", "4096")
	if err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"}); err != nil {
		t.Errorf("run = %v, want a byte-less baseline to phase in cleanly", err)
	}
	dir2 := t.TempDir()
	old, fresh = baselinePair(t, dir2, "4096", "")
	if err := run([]string{"-old", old, "-new", fresh, "-bench", "BenchmarkREPTPerEdge"}); err != nil {
		t.Errorf("run = %v, want a byte-less fresh run to skip byte gating", err)
	}
}

// TestRunPairBytesGate: the within-run pair gate bounds A's B/op against
// B's under the same ratio cap plus the absolute slack — the
// accounted-vs-unaccounted ingest pair proves "the ledger costs neither
// time nor allocation" through this gate.
func TestRunPairBytesGate(t *testing.T) {
	dir := t.TempDir()
	fresh := writeFile(t, dir, "new.json", jsonBench(
		"BenchmarkIngestUnaccountedPerEvent-8 \\t 1000000 \\t 1000 ns/op \\t 0 B/op",
		"BenchmarkIngestAccountedPerEvent-8 \\t 1000000 \\t 1010 ns/op \\t 0 B/op",
	))
	if err := run([]string{"-new", fresh,
		"-pair", "BenchmarkIngestAccountedPerEvent=BenchmarkIngestUnaccountedPerEvent@1.02"}); err != nil {
		t.Errorf("run = %v, want a 0 B/op pair within the 1.02 cap to pass", err)
	}

	alloc := writeFile(t, dir, "alloc.json", jsonBench(
		"BenchmarkIngestUnaccountedPerEvent-8 \\t 1000000 \\t 1000 ns/op \\t 0 B/op",
		"BenchmarkIngestAccountedPerEvent-8 \\t 1000000 \\t 1010 ns/op \\t 128 B/op",
	))
	err := run([]string{"-new", alloc,
		"-pair", "BenchmarkIngestAccountedPerEvent=BenchmarkIngestUnaccountedPerEvent@1.02"})
	if err == nil || !strings.Contains(err.Error(), "allocates") {
		t.Errorf("run = %v, want a pair byte failure when the accounted side allocates", err)
	}
}
