// Command exactcount computes exact triangle statistics of an edge-list
// file: τ, τ_v, and the paper's η statistics that determine sampling
// estimator variance.
//
// Usage:
//
//	exactcount -in edges.txt [-local -top 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rept"
	"rept/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "exactcount:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("exactcount", flag.ContinueOnError)
	var (
		in    = fs.String("in", "", "input edge list (required)")
		local = fs.Bool("local", false, "compute per-node counts")
		eta   = fs.Bool("eta", true, "compute η (stream-order dependent)")
		top   = fs.Int("top", 10, "print top-K nodes by τ_v (with -local)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	edges, err := graph.ReadEdgeListFile(*in, graph.ReadOptions{})
	if err != nil {
		return err
	}
	start := time.Now()
	res := rept.ExactCount(edges, rept.ExactOptions{Local: *local, Eta: *eta})
	fmt.Fprintf(out, "nodes=%d edges=%d triangles=%d", res.Nodes, res.Edges, res.Tau)
	if *eta {
		ratio := 0.0
		if res.Tau > 0 {
			ratio = float64(res.Eta) / float64(res.Tau)
		}
		fmt.Fprintf(out, " eta=%d eta/tau=%.2f", res.Eta, ratio)
	}
	fmt.Fprintf(out, " elapsed=%.2fs\n", time.Since(start).Seconds())
	if *local {
		type kv struct {
			v rept.NodeID
			x uint64
		}
		all := make([]kv, 0, len(res.TauV))
		for v, x := range res.TauV {
			all = append(all, kv{v, x})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].x != all[j].x {
				return all[i].x > all[j].x
			}
			return all[i].v < all[j].v
		})
		if *top > len(all) {
			*top = len(all)
		}
		for i := 0; i < *top; i++ {
			fmt.Fprintf(out, "  node %-10d τ_v=%d\n", all[i].v, all[i].x)
		}
	}
	return nil
}
