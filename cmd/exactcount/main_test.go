package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

func TestRunExactCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := graph.WriteEdgeListFile(path, gen.Complete(10)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-local", "-top", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// K10: τ = C(10,3) = 120, τ_v = C(9,2) = 36.
	if !strings.Contains(s, "triangles=120") {
		t.Errorf("wrong τ in %q", s)
	}
	if !strings.Contains(s, "τ_v=36") {
		t.Errorf("wrong τ_v in %q", s)
	}
}

func TestRunExactCountErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -in: got nil error")
	}
	if err := run([]string{"-in", "/nonexistent"}, &out); err == nil {
		t.Error("missing file: got nil error")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Error("unknown flag: got nil error")
	}
}
