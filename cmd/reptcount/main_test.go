package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

func writeStream(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.txt")
	edges := gen.Shuffle(gen.HolmeKim(300, 5, 0.5, 1), 2)
	// Add some noise for -dedup coverage.
	edges = append(edges, edges[0], graph.Edge{U: 5, V: 5})
	if err := graph.WriteEdgeListFile(path, edges); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExact(t *testing.T) {
	path := writeStream(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "exact", "-local", "-top", "3", "-dedup"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "triangles=") || !strings.Contains(s, "eta=") {
		t.Errorf("missing exact output: %q", s)
	}
	if !strings.Contains(s, "node ") {
		t.Errorf("missing -local output: %q", s)
	}
}

func TestRunREPT(t *testing.T) {
	path := writeStream(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "rept", "-m", "4", "-c", "4", "-local", "-dedup"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "triangles≈") {
		t.Errorf("missing estimate: %q", out.String())
	}
}

func TestRunBaselines(t *testing.T) {
	path := writeStream(t)
	for _, algo := range []string{"mascot", "triest", "gps"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-algo", algo, "-m", "4", "-local"}, &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "triangles≈") {
			t.Errorf("%s: missing estimate: %q", algo, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "rept"}, &out); err == nil {
		t.Error("missing -in: got nil error")
	}
	if err := run([]string{"-in", "/nonexistent", "-algo", "rept"}, &out); err == nil {
		t.Error("missing file: got nil error")
	}
	path := writeStream(t)
	if err := run([]string{"-in", path, "-algo", "bogus"}, &out); err == nil {
		t.Error("unknown algo: got nil error")
	}
	if err := run([]string{"-in", path, "-algo", "rept", "-m", "0"}, &out); err == nil {
		t.Error("bad m: got nil error")
	}
}
