// Command reptcount estimates global and local triangle counts of an edge
// stream (a SNAP-style text edge list) with REPT or one of the baseline
// estimators.
//
// Usage:
//
//	reptcount -in edges.txt -algo rept -m 10 -c 10 [-local -top 10]
//	reptcount -in edges.txt -algo mascot -m 10
//	reptcount -in edges.txt -algo exact
//
// The stream is processed in one pass (baselines with a default budget
// buffer it once to size the budget, unless -edges supplies a hint); for
// REPT, -c logical processors each sample edges with probability 1/m.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"rept"
	"rept/internal/graph"
	"rept/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reptcount:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reptcount", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "input edge list (required)")
		algo    = fs.String("algo", "rept", "algorithm: rept|mascot|triest|gps|exact")
		m       = fs.Int("m", 10, "sampling denominator; p = 1/m (rept, mascot)")
		c       = fs.Int("c", 10, "logical processors (rept)")
		budget  = fs.Int("budget", 0, "edge budget for triest/gps (default |E|/m)")
		seed    = fs.Int64("seed", 1, "random seed")
		local   = fs.Bool("local", false, "track local (per-node) counts")
		top     = fs.Int("top", 10, "print the top-K nodes by local count (with -local)")
		workers = fs.Int("workers", runtime.NumCPU(), "worker goroutines (rept)")
		dedup   = fs.Bool("dedup", false, "drop duplicate edges and self-loops on the fly")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}

	start := time.Now()
	switch *algo {
	case "exact":
		edges, err := readAll(*in, *dedup)
		if err != nil {
			return err
		}
		res := rept.ExactCount(edges, rept.ExactOptions{Local: *local, Eta: true})
		fmt.Fprintf(out, "nodes=%d edges=%d\n", res.Nodes, res.Edges)
		fmt.Fprintf(out, "triangles=%d eta=%d\n", res.Tau, res.Eta)
		if *local {
			printTopUint(out, res.TauV, *top)
		}
	case "rept":
		est, err := rept.New(rept.Config{M: *m, C: *c, Seed: *seed, TrackLocal: *local, Workers: *workers})
		if err != nil {
			return err
		}
		defer est.Close()
		if err := drainFile(*in, *dedup, est); err != nil {
			return err
		}
		res := est.Result()
		fmt.Fprintf(out, "edges=%d sampled=%d\n", est.Processed(), est.SampledEdges())
		fmt.Fprintf(out, "triangles≈%.1f\n", res.Global)
		if *local {
			printTopFloat(out, res.Local, *top)
		}
	case "mascot", "triest", "gps":
		// Budget defaults need |E|; buffer the stream once.
		edges, err := readAll(*in, *dedup)
		if err != nil {
			return err
		}
		counter, err := newBaseline(*algo, *m, *budget, len(edges), *seed, *local)
		if err != nil {
			return err
		}
		for _, e := range edges {
			counter.Add(e.U, e.V)
		}
		fmt.Fprintf(out, "edges=%d\n", len(edges))
		fmt.Fprintf(out, "triangles≈%.1f\n", counter.Global())
		if *local {
			if l, ok := counter.(interface {
				Locals() map[rept.NodeID]float64
			}); ok {
				printTopFloat(out, l.Locals(), *top)
			}
		}
	default:
		return fmt.Errorf("unknown -algo %q", *algo)
	}
	fmt.Fprintf(out, "elapsed=%.2fs\n", time.Since(start).Seconds())
	return nil
}

func readAll(path string, dedup bool) ([]graph.Edge, error) {
	src, err := stream.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	if dedup {
		return stream.Collect(stream.Dedup(src, true))
	}
	return stream.Collect(src)
}

func drainFile(path string, dedup bool, counter rept.Counter) error {
	src, err := stream.OpenFile(path)
	if err != nil {
		return err
	}
	defer src.Close()
	var s stream.Source = src
	if dedup {
		s = stream.Dedup(src, true)
	}
	return stream.Drain(s, func(e graph.Edge) { counter.Add(e.U, e.V) })
}

func newBaseline(algo string, m, budget, edges int, seed int64, local bool) (rept.Counter, error) {
	k := budget
	if k == 0 {
		k = edges / m
	}
	if k < 2 {
		k = 2
	}
	switch algo {
	case "mascot":
		return rept.NewMascot(1/float64(m), seed, local)
	case "triest":
		return rept.NewTriest(k, seed, local)
	case "gps":
		return rept.NewGPS(k/2+1, seed, local)
	}
	return nil, fmt.Errorf("unknown baseline %q", algo)
}

func printTopFloat(out io.Writer, m map[rept.NodeID]float64, k int) {
	type kv struct {
		v rept.NodeID
		x float64
	}
	all := make([]kv, 0, len(m))
	for v, x := range m {
		all = append(all, kv{v, x})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		fmt.Fprintf(out, "  node %-10d τ_v≈%.1f\n", all[i].v, all[i].x)
	}
}

func printTopUint(out io.Writer, m map[rept.NodeID]uint64, k int) {
	f := make(map[rept.NodeID]float64, len(m))
	for v, x := range m {
		f[v] = float64(x)
	}
	printTopFloat(out, f, k)
}
