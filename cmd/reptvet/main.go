// Command reptvet drives the REPT invariant analyzers (hotpathalloc,
// detorder, satarith, viewaccess, lockdiscipline) over Go packages and
// exits non-zero when any diagnostic is reported. It is the CI gate that
// turns the repository's runtime invariants — the zero-allocation hot
// path, deterministic encode/merge iteration, saturating counter
// arithmetic, epoch-view access discipline, and the shard ingest lock
// discipline — into compile-time failures.
//
// Usage:
//
//	go run ./cmd/reptvet ./...
//	go run ./cmd/reptvet -only hotpathalloc,detorder ./internal/...
//	go run ./cmd/reptvet -list
//
// Diagnostics print as path:line:col: [analyzer] message, one per line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rept/internal/analysis"
	"rept/internal/analysis/detorder"
	"rept/internal/analysis/hotpathalloc"
	"rept/internal/analysis/load"
	"rept/internal/analysis/lockdiscipline"
	"rept/internal/analysis/satarith"
	"rept/internal/analysis/viewaccess"
)

// analyzers is the full suite, in the order diagnostics group by.
var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	detorder.Analyzer,
	satarith.Analyzer,
	viewaccess.Analyzer,
	lockdiscipline.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("reptvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the available analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "reptvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "reptvet:", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "reptvet: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
			for _, d := range pass.Diagnostics() {
				fmt.Fprintf(stdout, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "reptvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag to a subset of the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
