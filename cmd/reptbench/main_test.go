package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table2", "fig1", "fig8", "ablation-hash"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunTable2Quick(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "table2", "-profile", "quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sim-flickr") {
		t.Errorf("table2 output missing dataset: %q", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "table2.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "bogus"}, &out); err == nil {
		t.Error("unknown profile: got nil error")
	}
	if err := run([]string{"-exp", "bogus", "-profile", "quick"}, &out); err == nil {
		t.Error("unknown experiment: got nil error")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag: got nil error")
	}
}
