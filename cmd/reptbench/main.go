// Command reptbench regenerates the REPT paper's evaluation tables and
// figures on synthetic dataset analogs (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	reptbench -exp all -profile quick
//	reptbench -exp fig3 -profile default -csv results/
//	reptbench -list
//
// Experiments: table2 fig1 fig3 fig4 fig5 fig6 fig7 fig8 variance
// ablation-combine ablation-hash, or "all".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rept/internal/exper"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reptbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reptbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment id or \"all\"")
		profile = fs.String("profile", "default", "profile: quick|default|full")
		seed    = fs.Int64("seed", 1, "master seed")
		csvDir  = fs.String("csv", "", "also write CSVs to this directory")
		list    = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "experiments:")
		for _, id := range exper.ExperimentIDs {
			fmt.Fprintln(out, "  "+id)
		}
		return nil
	}
	p, err := exper.ProfileByName(*profile)
	if err != nil {
		return err
	}
	return exper.Run(*exp, p, *seed, out, *csvDir)
}
